"""Kernel engine for the assignment sweep: cached geometry + backend dispatch.

The assignment sweep (Algorithm 1's inner loop) is the hot path of the whole
partitioner, and most of its inputs are invariant across large parts of a
run:

- per-point squared norms never change while the point set is fixed
  (computed once per :class:`SweepWorkspace`);
- per-center squared norms and the block-box-to-center distance ranges only
  change when the *centers* move (once per assign-and-balance phase, not per
  balance iteration);
- ``influence ** -2`` and the box-pruning candidate sets only change once
  per sweep (not per chunk);
- the ``(chunk, k)`` distance scratch can be preallocated once and reused
  via ``out=`` kwargs (per worker thread, since chunks may run in a pool).

:class:`SweepWorkspace` owns all of that cached state and threads it through
:func:`repro.core.assign.assign_points`; the actual top-2 reduction runs in
squared space (see :mod:`repro.geometry.distances`) on one of the kernel
backends registered in :mod:`repro.core.xp` (the single source of truth for
backend names, availability probing and fallback):

``"numpy"``
    Vectorised two-pass masked ``argmin`` over the scaled squared-distance
    matrix (the default; always available).
``"numba"``
    A fused JIT loop that computes the dot product, scaled comparison and
    top-2 tracking per point without materialising the ``(chunk, k)``
    matrix.  Falls back to ``"numpy"`` when numba is not installed (with a
    one-time warning naming the missing dependency), so the backend switch
    is safe to enable unconditionally.
``"torch-cpu"`` / ``"torch-cuda"``
    The device-resident :class:`~repro.core.torch_engine.TorchSweepEngine`:
    points, squared norms, block boxes and (per phase) the Hamerly bounds
    live in device tensors, only k-sized vectors cross the host boundary
    per sweep.  ``"torch-cuda"`` degrades to ``"torch-cpu"`` and then to
    ``"numpy"`` along the registered fallback chain.  The sub-block
    certification machinery (incremental engine) is host-side bookkeeping
    over per-point arrays, so it disables itself in device mode — the
    device sweep evaluates every Hamerly-active point instead.

The active backend is resolved once, at workspace construction, from
``config.kernel_backend`` and the ``REPRO_KERNEL_BACKEND`` environment
override (see :func:`repro.core.xp.resolve_kernel_backend`).

Static SFC block decomposition (§4.4 accelerated): when ``sfc_sort`` is on
the points are processed in space-filling-curve order, so the workspace cuts
them once into fixed ``chunk_size`` blocks and caches each block's bounding
box *and* its raw squared min/max distances to every center (refreshed only
when centers move).  A balance iteration then derives its pruning candidate
sets by rescaling those ranges with the current ``influence ** -2`` — a
``(nblocks, k)`` elementwise pass — instead of re-deriving boxes from raw
points for every chunk of every sweep.

Incremental sweep engine (``config.use_incremental``): three cooperating
pieces on top of the static blocks.

1. *Candidate-local relaxations* — the big lever.  Between balance
   iterations the classic Hamerly relaxation shrinks every point's
   runner-up bound by the global worst case (``lb *= ratio.min()``), so a
   single cluster adapting at the influence cap forces periodic
   re-evaluation of the entire point set.  The workspace instead builds,
   per static block, factors over that block's §4.4 *candidate set* only
   (a per-(block, cluster) table excluding the point's own cluster) plus a
   chained distance floor covering every non-candidate — every
   non-candidate center provably sits farther than ``sqrt`` of the block's
   pruning threshold, and the floor composes across influence/movement ops.
   Influence or movement changes in one region then stop invalidating
   bounds everywhere (2-3x fewer point evaluations on the trajectory
   workload, see BENCH_balance.json).

2. *Sub-block certification* — per fixed-size sub-block
   (``incremental_block_size`` points) the workspace keeps the smallest
   Hamerly gap ``min_gap = min(lb - ub)`` and the largest own-distance
   bound ``max_ub``.  A sub-block with ``min_gap > 0`` provably contains
   only filter-certified points and is skipped without reading per-point
   arrays; aggregates refresh right after a sweep touches a sub-block and
   are adjusted analytically by each relaxation.  When most sub-blocks
   wake anyway (active balancing), the filter parks itself — aggregates
   drop and a periodic probe (every 8th globally-scanned sweep) rebuilds
   them to notice when the trajectory has gone quiet.

3. *Weight deltas* — sweeps report the per-cluster weight delta of the
   assignments they changed, so block weights are maintained by addition
   instead of a full ``bincount`` per balance iteration (exact for
   integer-valued weights; see the config docstring).

On the ``"numba"`` backend the whole sweep — sub-block filter, per-point
bound test, masked top-2, bound writes and per-sub-block weight-delta
accumulation — is fused into one ``prange`` kernel.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

from repro.core import xp as _xp
from repro.core.bounds import _eff_deltas, _influence_ratio
from repro.core.xp import HAVE_NUMBA
from repro.geometry.boxes import block_bounds, blocks_min_max_sq
from repro.geometry.distances import top2_effective

__all__ = ["HAVE_NUMBA", "resolve_backend", "SweepWorkspace"]

# when at least this fraction of sub-blocks wakes for a sweep, the per-region
# select/refresh machinery costs more than it saves: the filter parks itself
# (aggregates drop; the periodic probe in maybe_refresh_all rebuilds them)
_WAKE_BYPASS_FRACTION = 0.375


def _multi_arange(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], ends[i])`` without a Python loop."""
    lens = ends - starts
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if lens.shape[0] > 1:
        cml = np.cumsum(lens[:-1])
        out[cml] = starts[1:] - ends[:-1] + 1
    return np.cumsum(out)

_NUMBA_KERNEL = None
_NUMBA_SWEEP_KERNEL = None


def resolve_backend(name: str) -> str:
    """Resolve a configured backend name to an available one.

    Thin alias for :func:`repro.core.xp.resolve_kernel_backend` (kept for
    backward compatibility): honours the ``REPRO_KERNEL_BACKEND`` override
    and degrades unavailable backends along their registered fallback chain
    with a one-time warning, so configs are portable across environments.
    """
    return _xp.resolve_kernel_backend(name)


def _get_numba_kernel():
    """Compile (once) and return the fused top-2 kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:  # pragma: no cover - requires numba
        from numba import njit

        @njit(nogil=True, cache=False)
        def _top2(points, centers, p_sq, c_sq, inv2, influence):
            m, d = points.shape
            k = centers.shape[0]
            assign = np.empty(m, dtype=np.int64)
            best = np.empty(m, dtype=np.float64)
            second = np.empty(m, dtype=np.float64)
            for i in range(m):
                s0 = np.inf
                s1 = np.inf
                j0 = 0
                j1 = -1
                sq0 = 0.0
                sq1 = 0.0
                for j in range(k):
                    dot = 0.0
                    for dd in range(d):
                        dot += points[i, dd] * centers[j, dd]
                    sq = p_sq[i] - 2.0 * dot + c_sq[j]
                    if sq < 0.0:
                        sq = 0.0
                    s = sq * inv2[j]
                    if s < s0:
                        s1 = s0
                        j1 = j0
                        sq1 = sq0
                        s0 = s
                        j0 = j
                        sq0 = sq
                    elif s < s1:
                        s1 = s
                        j1 = j
                        sq1 = sq
                assign[i] = j0
                best[i] = np.sqrt(sq0) / influence[j0]
                if j1 >= 0:
                    second[i] = np.sqrt(sq1) / influence[j1]
                else:
                    second[i] = np.inf
            return assign, best, second

        _NUMBA_KERNEL = _top2
    return _NUMBA_KERNEL


def _get_numba_sweep_kernel():
    """Compile (once) and return the fused whole-sweep kernel.

    One ``prange`` over static blocks fuses the per-point Hamerly filter,
    the masked top-2, the bound writes, the per-block weight-delta rows and
    the post-sweep block-aggregate refresh — no Python chunk orchestration,
    no thread-pool dispatch, no ``(chunk, k)`` temporaries.  Inner loops
    mirror :func:`_get_numba_kernel`'s accumulation order exactly (ascending
    center index), so per-point results are bit-identical to the chunked
    numba path.
    """
    global _NUMBA_SWEEP_KERNEL
    if _NUMBA_SWEEP_KERNEL is None:  # pragma: no cover - requires numba
        from numba import njit, prange

        @njit(parallel=True, nogil=True, cache=False)
        def _sweep(points, centers, p_sq, c_sq, inv2, influence, cand_mask,
                   sub_start, sub_end, sub_block, active, assignment, ub, lb,
                   weights, point_filter, collect_delta):
            nsubs = sub_start.shape[0]
            k = centers.shape[0]
            d = points.shape[1]
            deltas = np.zeros((nsubs, k))
            evaluated = np.zeros(nsubs, dtype=np.int64)
            changed = np.zeros(nsubs, dtype=np.int64)
            cand_counts = np.zeros(nsubs, dtype=np.int64)
            blk_min_gap = np.full(nsubs, np.inf)
            blk_max_ub = np.full(nsubs, -np.inf)
            for b in prange(nsubs):
                if active[b] == 0:
                    continue
                parent = sub_block[b]
                ncand = 0
                for j in range(k):
                    if cand_mask[parent, j]:
                        ncand += 1
                cand_counts[b] = ncand
                for i in range(sub_start[b], sub_end[b]):
                    if point_filter and ub[i] < lb[i]:
                        continue
                    evaluated[b] += 1
                    s0 = np.inf
                    s1 = np.inf
                    j0 = 0
                    j1 = -1
                    sq0 = 0.0
                    sq1 = 0.0
                    for j in range(k):
                        if not cand_mask[parent, j]:
                            continue
                        dot = 0.0
                        for dd in range(d):
                            dot += points[i, dd] * centers[j, dd]
                        sq = p_sq[i] - 2.0 * dot + c_sq[j]
                        if sq < 0.0:
                            sq = 0.0
                        s = sq * inv2[j]
                        if s < s0:
                            s1 = s0
                            j1 = j0
                            sq1 = sq0
                            s0 = s
                            j0 = j
                            sq0 = sq
                        elif s < s1:
                            s1 = s
                            j1 = j
                            sq1 = sq
                    old = assignment[i]
                    assignment[i] = j0
                    ub[i] = np.sqrt(sq0) / influence[j0]
                    if j1 >= 0:
                        lb[i] = np.sqrt(sq1) / influence[j1]
                    else:
                        lb[i] = np.inf
                    if collect_delta and j0 != old:
                        changed[b] += 1
                        deltas[b, old] -= weights[i]
                        deltas[b, j0] += weights[i]
                mx = -np.inf
                mn = np.inf
                for i in range(sub_start[b], sub_end[b]):
                    if ub[i] > mx:
                        mx = ub[i]
                    g = lb[i] - ub[i]
                    if g < mn:
                        mn = g
                blk_max_ub[b] = mx
                blk_min_gap[b] = mn
            return deltas, evaluated, changed, cand_counts, blk_min_gap, blk_max_ub

        _NUMBA_SWEEP_KERNEL = _sweep
    return _NUMBA_SWEEP_KERNEL


class SweepWorkspace:
    """Sweep-invariant cached geometry for assignment sweeps over one point set.

    Lifetimes of the cached pieces:

    ==========================  =========================================
    cached                      recomputed when
    ==========================  =========================================
    ``points_sq``               never (points are fixed per workspace)
    static block boxes          never (SFC order is fixed per workspace)
    ``centers_sq``, block       :meth:`begin_phase` — i.e. when the center
    min/max squared ranges      array changes (checked by identity)
    ``inv_influence_sq``,       every :meth:`prepare` call (per sweep)
    pruning candidate sets
    scratch buffers             never (allocated lazily per worker thread)
    ==========================  =========================================

    Center changes are detected by object identity, so callers that mutate a
    center array *in place* must call :meth:`begin_phase` explicitly
    (``assign_and_balance`` does this once per phase).

    ``ephemeral=True`` marks a workspace built for a single sweep (e.g. by
    ``assign_points`` when none was supplied, or on worker-process ranks):
    the incremental block-bound aggregates are disabled there, since they
    only pay off when they survive across sweeps.

    On a device backend (``torch-cpu`` / ``torch-cuda``) the workspace also
    owns a :class:`~repro.core.torch_engine.TorchSweepEngine` holding the
    device-resident mirror of this state; ``rank`` feeds per-rank device
    affinity (defaults to the process/MPI rank hint, see
    :func:`repro.core.xp.get_rank_hint`).  Input points are promoted to
    C-contiguous float64 identically on every backend.
    """

    def __init__(self, points: np.ndarray, config, k: int, ephemeral: bool = False,
                 rank: int | None = None):
        self.points = np.ascontiguousarray(points, dtype=np.float64)
        self.k = int(k)
        self.config = config
        self.backend = resolve_backend(getattr(config, "kernel_backend", "numpy"))
        self.device_mode = _xp.kernel_backend_spec(self.backend).device
        self.xp = _xp.get_namespace(self.backend)
        self.points_sq = self.xp.einsum("ij,ij->i", self.points, self.points)
        self._tls = threading.local()
        self._centers_ref: np.ndarray | None = None
        self.centers: np.ndarray | None = None
        self.centers_sq: np.ndarray | None = None
        self.influence: np.ndarray | None = None
        self.inv_influence_sq: np.ndarray | None = None
        # static SFC block decomposition (boxes computed once per run);
        # empty point sets (e.g. an empty rank in the distributed runtime)
        # have nothing to sweep, so no blocks
        self.block_size = int(config.chunk_size)
        self.has_static_blocks = bool(
            config.sfc_sort and config.use_box_pruning and self.k > 2 and self.points.shape[0] > 0
        )
        if self.has_static_blocks:
            self.block_lo, self.block_hi = block_bounds(self.points, self.block_size)
            self.n_blocks = self.block_lo.shape[0]
            # aggregate sub-blocks: the incremental filter's granularity.
            # Finer than the static (candidate-set) blocks because a
            # sub-block only skips when *every* point in it is certified.
            self.sub_size = min(self.block_size, int(getattr(config, "incremental_block_size", self.block_size)))
            n = self.points.shape[0]
            # sub-blocks are cut *within* each static block (the last sub of
            # a block may be short): a sub-block must never span two blocks,
            # or block-local candidate factors would be applied to points of
            # the neighbouring block
            starts = [
                np.arange(s, min(s + self.block_size, n), self.sub_size, dtype=np.int64)
                for s in range(0, n, self.block_size)
            ]
            self.sub_starts = np.concatenate(starts)
            self.n_subs = self.sub_starts.shape[0]
            self.sub_ends = np.empty_like(self.sub_starts)
            self.sub_ends[:-1] = self.sub_starts[1:]
            self.sub_ends[-1] = n
            self.sub_blocks = self.sub_starts // self.block_size  # parent static block
        else:
            self.block_lo = self.block_hi = None
            self.n_blocks = 0
            self.sub_size = self.block_size
            self.n_subs = 0
            self.sub_starts = self.sub_ends = self.sub_blocks = None
        self._block_min_sq: np.ndarray | None = None
        self._block_max_sq: np.ndarray | None = None
        self._block_cand_mask: np.ndarray | None = None
        self._block_cand_counts: np.ndarray | None = None
        self._block_cand_cache: dict[int, np.ndarray | None] = {}
        self._block_floor: np.ndarray | None = None
        # incremental engine: per-sub-block bound aggregates (valid only
        # after a full refresh) plus the pending-relaxation journal.  A
        # sub-block whose smallest per-point bound gap ``min(lb - ub)`` is
        # positive provably contains only filter-certified points and is
        # skipped whole; ``max_ub`` rides along so relaxations can adjust
        # the gap analytically.  The journal holds bound relaxations applied
        # analytically to the aggregates but not yet to per-point arrays of
        # skipped sub-blocks; they are replayed — in order — when a
        # sub-block wakes up.
        self.incremental = bool(
            self.has_static_blocks
            and not ephemeral
            and not self.device_mode  # sub-block filter is host-side bookkeeping
            and getattr(config, "use_incremental", False)
            and getattr(config, "use_bounds", True)
        )
        self.sub_min_gap: np.ndarray | None = None
        self.sub_max_ub: np.ndarray | None = None
        self._point_block: np.ndarray | None = None  # point -> static block, built lazily
        self._refresh_probe = 0
        # aggregates describe one specific (assignment, ub, lb) array
        # triple; if a caller sweeps with different arrays, the state
        # silently resets (first sweep on the new arrays is a full scan).
        # Weak references, not ids: a dead-and-reallocated array must never
        # masquerade as the original.
        self._bound_token: tuple | None = None
        # device backends: one engine per workspace holds the device-resident
        # mirror (points and static geometry upload here, exactly once)
        self._engine = None
        if self.device_mode:
            from repro.core.torch_engine import TorchSweepEngine

            point_block = None
            if self.has_static_blocks:
                n = self.points.shape[0]
                point_block = (np.arange(n, dtype=np.int64) // self.block_size)
            self._engine = TorchSweepEngine(
                self.backend, self.points, self.points_sq,
                self.block_lo, self.block_hi, point_block, self.k, rank=rank,
            )

    # -- warm reuse ---------------------------------------------------------

    #: Config fields the workspace's cached state actually depends on.  Two
    #: configs that agree here produce byte-identical workspaces; fields like
    #: epsilon/use_sampling/seeding live outside the workspace entirely, so a
    #: warm workspace may serve e.g. a partition *and* the sampling-free
    #: repartition variant of the same session.
    _CONFIG_FIELDS = (
        "kernel_backend", "chunk_size", "sfc_sort", "use_box_pruning",
        "incremental_block_size", "use_incremental", "use_bounds",
    )

    def _config_signature(self, config) -> tuple:
        return tuple(getattr(config, f, None) for f in self._CONFIG_FIELDS)

    def matches(self, points: np.ndarray, config, k: int) -> bool:
        """True when this workspace was built for exactly this sweep problem.

        A workspace may be kept warm across whole runs (the service layer
        keeps one per session) **only** for identical points, identical
        ``k``, and a config agreeing on every workspace-relevant field
        (:attr:`_CONFIG_FIELDS`) — the cached ``points_sq`` and static
        block boxes belong to those points, and the backend/chunking come
        from that config.  The value comparison makes a reused workspace
        safe even when the caller re-derives the sorted point array each
        call.  Callers must still :meth:`invalidate_block_bounds` before
        reuse so stale incremental aggregates from the previous run are
        dropped (they only affect skip statistics, never results, but
        start each run clean).
        """
        if self.k != int(k):
            return False
        if self._config_signature(self.config) != self._config_signature(config):
            return False
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if self.points.shape != pts.shape:
            return False
        return self.points is pts or bool(np.array_equal(self.points, pts))

    # -- phase / sweep setup ------------------------------------------------

    def begin_phase(self, centers: np.ndarray) -> None:
        """Cache geometry that only depends on the centers (once per phase)."""
        if centers.shape[0] != self.k:
            raise ValueError(f"expected {self.k} centers, got {centers.shape[0]}")
        self._centers_ref = centers
        self.centers = np.ascontiguousarray(centers, dtype=np.float64)
        self.centers_sq = self.xp.einsum("ij,ij->i", self.centers, self.centers)
        if self.device_mode:
            # the engine derives the block distance ranges on device; the
            # host copies are not needed (the device sweep owns pruning)
            self._engine.begin_phase(self.centers, self.centers_sq)
        elif self.has_static_blocks:
            self._block_min_sq, self._block_max_sq = blocks_min_max_sq(
                self.block_lo, self.block_hi, self.centers
            )

    def prepare(self, centers: np.ndarray, influence: np.ndarray) -> None:
        """Per-sweep setup: refresh center caches if needed, rescale for influence."""
        if centers is not self._centers_ref:
            self.begin_phase(centers)
        influence = np.asarray(influence, dtype=np.float64)
        if np.any(influence <= 0):
            raise ValueError("influence values must be strictly positive")
        self.influence = influence
        self.inv_influence_sq = influence**-2.0
        self._block_cand_cache.clear()
        if self.device_mode:
            self._engine.prepare(self.influence, self.inv_influence_sq)
        elif self.has_static_blocks:
            # exact §4.4 rule in squared space, all blocks at once: a center
            # whose min effective distance to the box exceeds the
            # second-smallest max effective distance can be neither best nor
            # runner-up for any point in the box.
            min_eff = self._block_min_sq * self.inv_influence_sq[None, :]
            max_eff = self._block_max_sq * self.inv_influence_sq[None, :]
            threshold = np.partition(max_eff, 1, axis=1)[:, 1]
            self._block_cand_mask = min_eff <= threshold[:, None]
            self._block_cand_counts = self._block_cand_mask.sum(axis=1)
            # per-block certainty radius for the incremental engine: every
            # non-candidate center c of block b satisfies eff(p, c) > T_b
            # for all p in the block (min_eff(c, box) > threshold in squared
            # space), so queued relaxations only need the worst case over
            # the block's own candidates plus a T_b-based floor for
            # everything else.  The floor chains through queued ops (see
            # queue_relax_*) and resets here, at every sweep.
            self._block_floor = np.sqrt(threshold)

    # -- pruning ------------------------------------------------------------

    def block_candidates(self, block: int) -> np.ndarray | None:
        """Candidate centers for static block ``block`` under the current sweep.

        Returns ``None`` for "evaluate all centers" (no pruning possible).
        """
        if self._block_cand_mask is None:
            return None
        if self._block_cand_counts[block] >= self.k:
            return None
        cached = self._block_cand_cache.get(block, False)
        if cached is False:
            cached = np.flatnonzero(self._block_cand_mask[block])
            self._block_cand_cache[block] = cached
        return cached

    # -- incremental sub-block bound aggregates + relaxation journal --------

    @property
    def aggregates_valid(self) -> bool:
        """True once every sub-block's ``min_gap`` / ``max_ub`` reflects the bounds."""
        return self.sub_min_gap is not None

    def _stamp_bound_arrays(self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> None:
        self._bound_token = (weakref.ref(assignment), weakref.ref(ub), weakref.ref(lb))

    def _check_bound_arrays(self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> bool:
        """True when the aggregates describe exactly these arrays; resets otherwise."""
        token = self._bound_token
        if (
            token is None
            or token[0]() is not assignment
            or token[1]() is not ub
            or token[2]() is not lb
        ):
            self.invalidate_block_bounds()
            return False
        return True

    def maybe_refresh_all(self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> None:
        """Probe-throttled aggregate (re)seed after a globally-scanned sweep.

        While the trajectory is wake-heavy the sub-block filter cannot
        certify anything, so recomputing aggregates every sweep would be
        pure overhead; instead the filter stays dormant and re-probes every
        few sweeps (one O(n) reduceat) to notice when the trajectory has
        gone quiet.
        """
        if not self.incremental:
            return
        self._refresh_probe += 1
        if self._refresh_probe >= 8:
            self._refresh_probe = 0
            self.refresh_all_block_bounds(assignment, ub, lb)
        else:
            self.sub_min_gap = None
            self.sub_max_ub = None
            self._bound_token = None

    def refresh_all_block_bounds(self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> None:
        """Recompute every sub-block aggregate from the per-point bounds (O(n)).

        Relaxations apply eagerly, so the per-point arrays are always
        current; assign_points calls this after a sweep that ran with
        invalid aggregates.
        """
        if not self.incremental:
            return
        self.sub_min_gap = np.minimum.reduceat(lb - ub, self.sub_starts)
        self.sub_max_ub = np.maximum.reduceat(ub, self.sub_starts)
        self._stamp_bound_arrays(assignment, ub, lb)

    def _apply_relax(
        self,
        kind: str,
        per_cluster: np.ndarray,
        table: np.ndarray,
        floor_b: np.ndarray,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
    ) -> None:
        """Apply one candidate-local relaxation to every point (in place).

        ``per_cluster`` adjusts the own-center bound exactly
        (ratio-multiply for influence ops, effective-movement-add for
        movement ops); ``table[block, cluster]`` holds the runner-up factor
        over the block's candidates excluding the cluster, and ``floor_b``
        caps the bound for runner-ups outside the candidate set.
        """
        if self._point_block is None:
            self._point_block = (
                np.arange(self.points.shape[0], dtype=np.int64) // self.block_size
            ).astype(np.int32)
        pb = self._point_block
        if kind == "infl":
            ub *= per_cluster[assignment]
            lb *= table[pb, assignment]
            np.minimum(lb, floor_b[pb], out=lb)
        else:
            ub += per_cluster[assignment]
            lb -= table[pb, assignment]
            np.minimum(lb, floor_b[pb], out=lb)
            np.maximum(lb, 0.0, out=lb)

    def _masked_bottom2(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-block ``(argmin, min, second-min)`` of ``values`` over each
        block's candidate set (rows of ``_block_cand_mask``)."""
        masked = np.where(self._block_cand_mask, values[None, :], np.inf)
        j_b = masked.argmin(axis=1)
        rows = np.arange(masked.shape[0])
        lo_b = masked[rows, j_b].copy()
        masked[rows, j_b] = np.inf
        lo2_b = masked.min(axis=1)
        return j_b, lo_b, lo2_b

    def queue_relax_influence(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        old_influence: np.ndarray,
        new_influence: np.ndarray,
    ) -> bool:
        """Apply a candidate-local influence relaxation.

        Every point's assigned center is inside its block's §4.4 candidate
        set (it is the exact argmin), and every *non*-candidate center sits
        farther than the block floor, so the runner-up bound only needs the
        smallest ratio over the block's own candidates (excluding the
        point's cluster, via a per-block top-2) capped by the chained
        floor — an influence change in one region no longer invalidates
        bounds everywhere, which is what keeps quiet regions skippable.
        Aggregates (when valid) adjust analytically in ``O(n_subs)``; the
        per-point update applies in one contiguous vectorised pass.
        Returns False when the candidate geometry is unavailable (no sweep
        has run yet); callers must then relax with the global-factor forms.
        """
        if not self.incremental or self._block_cand_mask is None or self._block_floor is None:
            return False
        track = self.aggregates_valid and self._check_bound_arrays(assignment, ub, lb)
        ratio = _influence_ratio(old_influence, new_influence)
        mask = self._block_cand_mask
        j_b, lo_b, lo2_b = self._masked_bottom2(ratio)
        hi_b = np.where(mask, ratio[None, :], -np.inf).max(axis=1)
        g_b = np.where(mask, np.inf, ratio[None, :]).min(axis=1)
        # chain the non-candidate floor: eff > floor held before this op,
        # and every non-candidate's effective distance scales by >= g_b
        # (g_b is inf when the block has no non-candidates: its floor is
        # unused, so scale by 1 to avoid a spurious 0 * inf)
        self._block_floor = self._block_floor * np.where(np.isfinite(g_b), g_b, 1.0)
        floor_b = np.where(np.isfinite(g_b), self._block_floor, np.inf)
        # replay table: factor for a point in block b assigned to cluster c
        # = min ratio over cand(b) \ {c} (the own cluster never bounds its
        # own runner-up)
        table = np.broadcast_to(lo_b[:, None], mask.shape).copy()
        table[np.arange(mask.shape[0]), j_b] = lo2_b
        if track:
            # gap'(p) = lb' - ub' >= min(lo*lb - hi*ub, floor - hi*ub)
            #         >= min(lo*gap_min - (hi - lo)*max_ub, floor - hi*max_ub)
            parent = self.sub_blocks
            lo = lo_b[parent]
            hi = hi_b[parent]
            scaled_ub = self.sub_max_ub * hi
            self.sub_min_gap = np.minimum(
                self.sub_min_gap * lo - (hi - lo) * self.sub_max_ub,
                floor_b[parent] - scaled_ub,
            )
            self.sub_max_ub = scaled_ub
        self._apply_relax("infl", ratio, table, floor_b, assignment, ub, lb)
        return True

    def queue_relax_movement(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        deltas: np.ndarray,
        influence: np.ndarray,
    ) -> bool:
        """Queue a candidate-local center-movement relaxation (lazy form).

        Mirrors :meth:`queue_relax_influence`: the runner-up bound shrinks
        by the largest effective movement over the block's candidates other
        than the point's own cluster, capped by the chained non-candidate
        floor minus the largest non-candidate movement.
        """
        if not self.incremental or self._block_cand_mask is None or self._block_floor is None:
            return False
        track = self.aggregates_valid and self._check_bound_arrays(assignment, ub, lb)
        eff_delta = _eff_deltas(deltas, influence)
        mask = self._block_cand_mask
        j_b, nd1, nd2 = self._masked_bottom2(-eff_delta)
        d1_b = -nd1
        d2_b = np.where(np.isfinite(nd2), -nd2, 0.0)
        e_b = np.where(mask, -np.inf, eff_delta[None, :]).max(axis=1)
        self._block_floor = np.where(np.isfinite(e_b), self._block_floor - e_b, self._block_floor)
        np.maximum(self._block_floor, 0.0, out=self._block_floor)
        floor_b = np.where(np.isfinite(e_b), self._block_floor, np.inf)
        table = np.broadcast_to(d1_b[:, None], mask.shape).copy()
        table[np.arange(mask.shape[0]), j_b] = d2_b
        if track:
            # gap'(p) >= min(gap_min - 2*d1, floor - max_ub - d1); ub' <= max_ub + d1
            parent = self.sub_blocks
            d1 = d1_b[parent]
            grown_ub = self.sub_max_ub + d1
            self.sub_min_gap = np.minimum(self.sub_min_gap - 2.0 * d1, floor_b[parent] - grown_ub)
            self.sub_max_ub = grown_ub
        self._apply_relax("move", eff_delta, table, floor_b, assignment, ub, lb)
        return True

    def note_influence_relax(self, ratio_max: float, ratio_min: float) -> None:
        """Adjust aggregates analytically after an *eager* influence relaxation.

        Per point, ``ub *= ratio[a(p)] <= ratio_max`` and ``lb`` is
        multiplied by a factor ``>= ratio_min`` (exact or exclusive form),
        so scaling the aggregates by the extremes keeps them conservative.
        """
        if self.incremental and self.aggregates_valid:
            # gap' >= min_ratio*gap_min - (max_ratio - min_ratio)*max_ub
            self.sub_min_gap = self.sub_min_gap * ratio_min - (ratio_max - ratio_min) * self.sub_max_ub
            self.sub_max_ub = self.sub_max_ub * ratio_max

    def note_movement_relax(self, ub_growth: float, lb_shrink: float) -> None:
        """Adjust aggregates analytically after an *eager* movement relaxation."""
        if self.incremental and self.aggregates_valid:
            self.sub_min_gap -= ub_growth + lb_shrink
            self.sub_max_ub = self.sub_max_ub + ub_growth

    def invalidate_block_bounds(self) -> None:
        """Forget aggregates and drop pending relaxations.

        For callers that overwrite ``ub``/``lb`` wholesale (bound reset,
        empty-cluster reseed).  Dropping un-replayed ops leaves skipped
        points' ``lb`` too large, so the caller *must* reset ``lb`` (both
        existing callers zero or reinitialise it).
        """
        self.sub_min_gap = None
        self.sub_max_ub = None
        self._bound_token = None

    def begin_incremental_sweep(
        self, assignment: np.ndarray, ub: np.ndarray, lb: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Active-point selection via the sub-block filter.

        Returns ``(need, woken)`` — the indices needing evaluation and the
        woken sub-block ids — or ``None`` when the aggregates are invalid
        (caller falls back to the global scan).  Pending relaxations are
        replayed for woken sub-blocks first, so the per-point test sees
        exactly the values the eager path would have; the resulting ``need``
        set is identical to the global ``flatnonzero(ub >= lb)``.
        """
        if not self.incremental or not self.aggregates_valid:
            return None
        if not self._check_bound_arrays(assignment, ub, lb):
            return None
        mask = self.sub_min_gap <= 0.0
        woken = np.flatnonzero(mask)
        if woken.size == 0:
            return np.empty(0, dtype=np.int64), woken
        if woken.size >= _WAKE_BYPASS_FRACTION * self.n_subs:
            # wake-heavy sweep: the filter cannot pay for itself — scan
            # globally, drop the aggregates, and let the periodic probe in
            # maybe_refresh_all notice when the trajectory goes quiet.
            # (Relaxations are applied eagerly, so per-point bounds are
            # always current and nothing needs replaying.)
            self.sub_min_gap = None
            self.sub_max_ub = None
            self._bound_token = None
            return None
        region = _multi_arange(self.sub_starts[woken], self.sub_ends[woken])
        need = region[ub[region] >= lb[region]]
        return need, woken

    def end_incremental_sweep(self, woken: np.ndarray, ub: np.ndarray, lb: np.ndarray) -> None:
        """Refresh the woken sub-blocks' aggregates and compact the journal."""
        if woken.size == self.n_subs:
            self.sub_min_gap = np.minimum.reduceat(lb - ub, self.sub_starts)
            self.sub_max_ub = np.maximum.reduceat(ub, self.sub_starts)
        elif woken.size:
            starts = self.sub_starts[woken]
            ends = self.sub_ends[woken]
            region = _multi_arange(starts, ends)
            local = np.concatenate([[0], np.cumsum(ends - starts)[:-1]])
            self.sub_min_gap[woken] = np.minimum.reduceat(lb[region] - ub[region], local)
            self.sub_max_ub[woken] = np.maximum.reduceat(ub[region], local)

    # -- kernels ------------------------------------------------------------

    def _scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-thread ``(chunk_size, k)`` scratch (chunks may run in a pool)."""
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None:
            bufs = (
                np.empty((self.block_size, self.k)),
                np.empty((self.block_size, self.k)),
            )
            self._tls.bufs = bufs
        return bufs

    def top2(
        self,
        chunk_points: np.ndarray,
        chunk_idx: np.ndarray | slice,
        candidate_idx: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Top-2 effective distances for one chunk, using all cached geometry.

        ``chunk_idx`` selects the chunk's rows within the workspace point set
        (index array or slice) so the cached per-point norms line up with
        ``chunk_points``.
        """
        p_sq = self.points_sq[chunk_idx]
        if self.backend == "numba":  # pragma: no cover - requires numba
            kernel = _get_numba_kernel()
            if candidate_idx is None:
                centers, c_sq = self.centers, self.centers_sq
                inv2, infl = self.inv_influence_sq, self.influence
            else:
                centers = self.centers[candidate_idx]
                c_sq = self.centers_sq[candidate_idx]
                inv2 = self.inv_influence_sq[candidate_idx]
                infl = self.influence[candidate_idx]
            assign, best, second = kernel(
                np.ascontiguousarray(chunk_points), centers, p_sq, c_sq, inv2, infl
            )
            if candidate_idx is not None:
                assign = np.asarray(candidate_idx, dtype=np.int64)[assign]
            return assign, best, second
        sq_out = scaled_out = None
        if candidate_idx is None and chunk_points.shape[0] <= self.block_size:
            sq_out, scaled_out = self._scratch()
        return top2_effective(
            chunk_points,
            self.centers,
            self.influence,
            candidate_idx,
            p_sq=p_sq,
            c_sq=self.centers_sq,
            inv_influence_sq=self.inv_influence_sq,
            sq_out=sq_out,
            scaled_out=scaled_out,
        )

    def fused_sweep(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        use_bounds: bool,
        weights: np.ndarray | None = None,
    ) -> tuple[int, int, np.ndarray | None, int, int, int]:
        """One whole sweep in the fused numba kernel (sub-block layout).

        Replays pending relaxations for woken sub-blocks, then runs one
        ``prange`` kernel that fuses the per-point filter, masked top-2,
        bound writes, per-sub-block weight-delta rows and the aggregate
        refresh.  Returns ``(evaluated, center_evals, delta, changed,
        subs_active, subs_total)`` where ``delta`` is the per-cluster weight
        delta of the changed assignments (``None`` unless ``weights`` is
        given), summed over sub-blocks in index order.
        """  # pragma: no cover - requires numba
        kernel = _get_numba_sweep_kernel()
        filtered = (use_bounds and self.incremental and self.aggregates_valid
                    and self._check_bound_arrays(assignment, ub, lb))
        point_filter = bool(use_bounds)
        if filtered:
            mask = self.sub_min_gap <= 0.0
            woken = np.flatnonzero(mask)
            if woken.size >= _WAKE_BYPASS_FRACTION * self.n_subs:
                active = np.ones(self.n_subs, dtype=np.uint8)
            else:
                active = mask.astype(np.uint8)
        else:
            active = np.ones(self.n_subs, dtype=np.uint8)
        cand_mask = self._block_cand_mask
        if cand_mask is None:
            cand_mask = np.ones((self.n_blocks, self.k), dtype=bool)
        collect = weights is not None
        w = np.ascontiguousarray(weights, dtype=np.float64) if collect else np.empty(0)
        deltas, evaluated, changed, cand_counts, sub_min_gap, sub_max_ub = kernel(
            self.points, self.centers, self.points_sq, self.centers_sq,
            self.inv_influence_sq, self.influence, cand_mask,
            self.sub_starts, self.sub_ends, self.sub_blocks, active,
            assignment, ub, lb, w, point_filter, collect,
        )
        if self.incremental:
            act = active.astype(bool)
            if filtered:
                # skipped sub-blocks keep their previous (valid) aggregates
                self.sub_min_gap[act] = sub_min_gap[act]
                self.sub_max_ub[act] = sub_max_ub[act]
            else:
                # every sub-block was evaluated: full (exact) refresh
                self.sub_min_gap = sub_min_gap
                self.sub_max_ub = sub_max_ub
                self._stamp_bound_arrays(assignment, ub, lb)
        delta = deltas.sum(axis=0) if collect else None
        return (
            int(evaluated.sum()),
            int((evaluated * cand_counts).sum()),
            delta,
            int(changed.sum()),
            int(active.sum()),
            self.n_subs,
        )

    # -- device-resident engine (torch backends) ----------------------------

    @property
    def engine(self):
        """The :class:`~repro.core.torch_engine.TorchSweepEngine`, or ``None``."""
        return self._engine

    def begin_device_session(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Upload the per-point state once for a whole balance loop.

        Until :meth:`end_device_session`, the host arrays are stale: sweeps,
        block-weight reductions and influence relaxations run on the device
        copies (``assign_and_balance`` brackets its loop in a session, which
        is what makes bounds cross the host boundary once per phase).
        """
        self._engine.begin_session(assignment, ub, lb, weights)

    def end_device_session(self) -> None:
        """Flush the device per-point state back into the host arrays."""
        self._engine.end_session()

    def device_sweep(
        self,
        assignment: np.ndarray,
        ub: np.ndarray,
        lb: np.ndarray,
        use_bounds: bool,
        weights: np.ndarray | None = None,
    ) -> tuple[int, int, int, np.ndarray | None]:
        """One whole sweep on the device engine.

        Returns ``(evaluated, center_evals, changed, delta)``; see
        :meth:`repro.core.torch_engine.TorchSweepEngine.sweep`.
        """
        return self._engine.sweep(assignment, ub, lb, use_bounds, weights)

    def device_block_weights(self, assignment: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Per-cluster weight sums on device (k-sized download)."""
        return self._engine.block_weights(assignment, weights)

    def device_relax_influence(
        self, old_influence: np.ndarray, new_influence: np.ndarray
    ) -> tuple[float, float]:
        """Influence relaxation applied to the session's device tensors."""
        return self._engine.relax_influence(old_influence, new_influence)

    def transfer_stats(self) -> dict | None:
        """Host↔device transfer accounting (``None`` on host backends)."""
        return None if self._engine is None else self._engine.transfer_stats()
