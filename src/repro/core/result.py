"""Result types for balanced k-means."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.timers import StageTimer

__all__ = ["IterationStats", "KMeansResult"]


@dataclass(frozen=True)
class IterationStats:
    """Diagnostics for one center-movement round (Algorithm 2 main loop)."""

    iteration: int
    max_delta: float
    imbalance: float
    balance_iterations: int
    skip_fraction: float
    pruning_fraction: float
    sample_size: int  # points involved this round (< n during sampled init)


@dataclass
class KMeansResult:
    """Output of :func:`repro.core.balanced_kmeans`.

    Attributes
    ----------
    assignment:
        ``(n,)`` block ids in the caller's point order.
    centers, influence:
        Final cluster centers and influence values (``k`` each).
    converged:
        True when the maximum center movement fell below the threshold
        before the iteration cap.
    imbalance:
        Weighted imbalance of the returned assignment.
    history:
        Per-iteration diagnostics (main rounds and sampled-init rounds).
    timers:
        Stage breakdown (sfc_index / seeding / sampling / assign / update),
        the basis for the §5.3.2 component analysis.
    """

    assignment: np.ndarray
    centers: np.ndarray
    influence: np.ndarray
    iterations: int
    converged: bool
    imbalance: float
    history: list[IterationStats] = field(default_factory=list)
    timers: StageTimer = field(default_factory=StageTimer)

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    @property
    def skip_fraction(self) -> float:
        """Overall fraction of inner-loop skips (the paper's ~80 % claim, §4.3)."""
        full_rounds = [h for h in self.history if h.sample_size == self.assignment.shape[0]]
        if not full_rounds:
            return 0.0
        return float(np.mean([h.skip_fraction for h in full_rounds]))

    def __repr__(self) -> str:
        return (
            f"KMeansResult(k={self.k}, n={self.assignment.shape[0]}, iterations={self.iterations}, "
            f"converged={self.converged}, imbalance={self.imbalance:.4f})"
        )
