"""Vectorised assign-and-balance phase (Algorithm 1).

The paper's inner loop is per-point; here the same logic is expressed over
numpy arrays:

- the Hamerly filter ``ub < lb`` selects, in one vector comparison, the
  points whose assignment provably cannot have changed (line 9);
- the remaining points are processed in chunks; per chunk, the bounding-box
  rule of §4.4 selects candidate centers *exactly*: a center whose minimum
  effective distance to the chunk's bounding box exceeds the second-smallest
  *maximum* effective distance of any center to that box can be neither the
  best nor the runner-up for any point in the box, so dropping it cannot
  change assignments or bounds (the two centers defining the threshold are
  always kept, making the rule self-consistent);
- after assignment, block weights are reduced and influence values adapted
  (Eq. 1); the loop repeats until balanced or the iteration cap is hit.

All sweep-invariant geometry (point norms, center norms, ``influence**-2``,
static SFC block boxes, scratch buffers) lives in a
:class:`~repro.core.kernels.SweepWorkspace` threaded through every call; the
top-2 reduction itself runs in squared space (see
:mod:`repro.geometry.distances`).  When ``sfc_sort`` is on, chunks are
aligned to the workspace's static blocks so the pruning rule reuses boxes
computed once per run and box-to-center distances computed once per phase.

In the distributed runtime the block-weight reduction (line 31, the only
communication in Algorithm 1) becomes an allreduce over ranks; all other
steps read rank-local arrays only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import relax_for_influence
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import adapt_influence
from repro.core.kernels import SweepWorkspace
from repro.core.parallel import get_executor
from repro.geometry.boxes import BoundingBox

__all__ = ["AssignStats", "assign_points", "assign_and_balance"]


@dataclass
class AssignStats:
    """Counters validating the §4.3 claim that ~80 % of inner loops are skipped."""

    points_total: int = 0
    points_skipped: int = 0
    center_evals: int = 0
    center_evals_possible: int = 0
    balance_iterations: int = 0
    sweeps: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_skipped / self.points_total

    @property
    def pruning_fraction(self) -> float:
        """Fraction of center evaluations avoided by bounding-box pruning."""
        if self.center_evals_possible == 0:
            return 0.0
        return 1.0 - self.center_evals / self.center_evals_possible

    def merge(self, other: "AssignStats") -> None:
        self.points_total += other.points_total
        self.points_skipped += other.points_skipped
        self.center_evals += other.center_evals
        self.center_evals_possible += other.center_evals_possible
        self.balance_iterations += other.balance_iterations
        self.sweeps += other.sweeps


def _box_candidates(
    chunk_points: np.ndarray, centers: np.ndarray, inv_influence_sq: np.ndarray
) -> np.ndarray | None:
    """Candidate center indices for a chunk, or ``None`` for "all centers".

    Runs entirely in squared space (sqrt is monotone, so the §4.4 comparison
    is unchanged); ``inv_influence_sq`` is the per-sweep cached
    ``influence ** -2`` — callers convert influence once per sweep, not once
    per chunk.
    """
    k = centers.shape[0]
    if k <= 2:
        return None
    bb = BoundingBox.from_points(chunk_points)
    min_eff = bb.min_sq_dist(centers) * inv_influence_sq
    max_eff = bb.max_sq_dist(centers) * inv_influence_sq
    threshold = np.partition(max_eff, 1)[1]  # second-smallest max_eff
    cand = np.flatnonzero(min_eff <= threshold)
    if cand.shape[0] >= k:
        return None
    return cand


def _static_block_chunks(need: np.ndarray, workspace: SweepWorkspace) -> list[tuple[np.ndarray, int]]:
    """Split the sorted ``need`` indices along the workspace's static blocks.

    Returns ``(chunk, block_id)`` pairs for every non-empty block, so each
    chunk can look up its precomputed bounding-box candidate set.
    """
    block_size = workspace.block_size
    first = int(need[0]) // block_size
    last = int(need[-1]) // block_size
    if first == last:
        return [(need, first)]
    boundaries = np.arange(first + 1, last + 1) * block_size
    cuts = np.searchsorted(need, boundaries)
    chunks = []
    prev = 0
    for b, cut in enumerate(np.append(cuts, need.shape[0])):
        if cut > prev:
            chunks.append((need[prev:cut], first + b))
            prev = cut
    return chunks


def assign_points(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    config: BalancedKMeansConfig,
    stats: AssignStats | None = None,
    workspace: SweepWorkspace | None = None,
) -> int:
    """One assignment sweep; updates ``assignment``/``ub``/``lb`` in place.

    ``workspace`` carries cached geometry across sweeps (and runs); callers
    that sweep more than once over the same points should construct one
    :class:`~repro.core.kernels.SweepWorkspace` and reuse it.  When omitted,
    an ephemeral workspace is built for this sweep only.

    Returns the number of points that needed evaluation (the rest were
    certified unchanged by their bounds).
    """
    n = points.shape[0]
    k = centers.shape[0]
    if workspace is None:
        workspace = SweepWorkspace(points, config, k)
    elif workspace.points.shape != points.shape:
        raise ValueError(
            f"workspace was built for {workspace.points.shape} points, got {points.shape}"
        )
    workspace.prepare(centers, influence)
    if config.use_bounds:
        need = np.flatnonzero(ub >= lb)
    else:
        need = np.arange(n, dtype=np.int64)
    if stats is not None:
        stats.sweeps += 1
        stats.points_total += n
        stats.points_skipped += n - need.shape[0]
    if need.shape[0] == 0:
        return 0

    inv_influence_sq = workspace.inv_influence_sq

    def process_chunk(task: tuple[np.ndarray, int]) -> int:
        chunk, block = task
        # contiguous chunks (the common case on cold sweeps) gather and
        # scatter through slices, avoiding fancy-indexing copies
        if int(chunk[-1]) - int(chunk[0]) + 1 == chunk.shape[0]:
            sel = slice(int(chunk[0]), int(chunk[-1]) + 1)
        else:
            sel = chunk
        cpts = points[sel]
        if not config.use_box_pruning:
            cand = None
        elif block >= 0:
            cand = workspace.block_candidates(block)
        else:
            cand = _box_candidates(cpts, centers, inv_influence_sq)
        assign, best, second = workspace.top2(cpts, sel, cand)
        assignment[sel] = assign
        ub[sel] = best
        lb[sel] = second
        return k if cand is None else cand.shape[0]

    if workspace.has_static_blocks and config.use_box_pruning:
        tasks = _static_block_chunks(need, workspace)
    else:
        tasks = [(need[s : s + config.chunk_size], -1) for s in range(0, need.shape[0], config.chunk_size)]
    executor = get_executor(config.n_threads) if len(tasks) > 1 else None
    if executor is None:
        evaluated_per_chunk = [process_chunk(task) for task in tasks]
    else:
        # chunks touch disjoint index ranges, so concurrent writes are safe
        evaluated_per_chunk = list(executor.map(process_chunk, tasks))
    if stats is not None:
        for (chunk, _), evaluated in zip(tasks, evaluated_per_chunk):
            stats.center_evals += evaluated * chunk.shape[0]
            stats.center_evals_possible += k * chunk.shape[0]
    return int(need.shape[0])


@dataclass
class BalanceOutcome:
    """Result of one assign-and-balance phase."""

    influence: np.ndarray
    block_weights: np.ndarray
    imbalance: float
    balance_iterations: int = 0
    balanced: bool = False
    stats: AssignStats = field(default_factory=AssignStats)


def assign_and_balance(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    target_weights: np.ndarray,
    config: BalancedKMeansConfig,
    workspace: SweepWorkspace | None = None,
) -> BalanceOutcome:
    """Algorithm 1: alternate assignment sweeps with influence adaptation.

    Mutates ``assignment``, ``ub``, ``lb`` in place; returns the new influence
    vector (the input array is not modified) plus balance diagnostics.
    ``workspace`` (optional) is reused across the phase's sweeps; the phase
    geometry is refreshed unconditionally on entry, so callers may mutate
    ``centers`` in place between phases.
    """
    k = centers.shape[0]
    dim = points.shape[1]
    influence = np.array(influence, dtype=np.float64, copy=True)
    if workspace is None:
        workspace = SweepWorkspace(points, config, k)
    workspace.begin_phase(centers)
    stats = AssignStats()
    block_w = np.zeros(k)
    imbalance = np.inf
    balanced = False
    iterations = 0
    for it in range(config.max_balance_iterations):
        iterations = it + 1
        assign_points(points, centers, influence, assignment, ub, lb, config, stats, workspace)
        block_w = np.bincount(assignment, weights=weights, minlength=k)
        imbalance = float((block_w / target_weights).max() - 1.0)
        if imbalance <= config.epsilon:
            balanced = True
            break
        if it == config.max_balance_iterations - 1:
            break  # keep influence consistent with the final assignment
        old_influence = influence
        influence = adapt_influence(
            influence,
            block_w,
            target_weights,
            dim,
            cap=config.influence_change_cap,
            floor=config.influence_floor,
            ceil=config.influence_ceil,
        )
        if config.use_bounds:
            relax_for_influence(ub, lb, assignment, old_influence, influence)
    stats.balance_iterations = iterations
    return BalanceOutcome(influence, block_w, imbalance, iterations, balanced, stats)
