"""Vectorised assign-and-balance phase (Algorithm 1).

The paper's inner loop is per-point; here the same logic is expressed over
numpy arrays:

- the Hamerly filter ``ub < lb`` selects, in one vector comparison, the
  points whose assignment provably cannot have changed (line 9);
- the remaining points are processed in chunks; per chunk, the bounding-box
  rule of §4.4 selects candidate centers *exactly*: a center whose minimum
  effective distance to the chunk's bounding box exceeds the second-smallest
  *maximum* effective distance of any center to that box can be neither the
  best nor the runner-up for any point in the box, so dropping it cannot
  change assignments or bounds (the two centers defining the threshold are
  always kept, making the rule self-consistent);
- after assignment, block weights are reduced and influence values adapted
  (Eq. 1); the loop repeats until balanced or the iteration cap is hit.

In the distributed runtime the block-weight reduction (line 31, the only
communication in Algorithm 1) becomes an allreduce over ranks; all other
steps read rank-local arrays only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import relax_for_influence
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import adapt_influence
from repro.core.parallel import get_executor
from repro.geometry.boxes import BoundingBox
from repro.geometry.distances import top2_effective

__all__ = ["AssignStats", "assign_points", "assign_and_balance"]


@dataclass
class AssignStats:
    """Counters validating the §4.3 claim that ~80 % of inner loops are skipped."""

    points_total: int = 0
    points_skipped: int = 0
    center_evals: int = 0
    center_evals_possible: int = 0
    balance_iterations: int = 0
    sweeps: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_skipped / self.points_total

    @property
    def pruning_fraction(self) -> float:
        """Fraction of center evaluations avoided by bounding-box pruning."""
        if self.center_evals_possible == 0:
            return 0.0
        return 1.0 - self.center_evals / self.center_evals_possible

    def merge(self, other: "AssignStats") -> None:
        self.points_total += other.points_total
        self.points_skipped += other.points_skipped
        self.center_evals += other.center_evals
        self.center_evals_possible += other.center_evals_possible
        self.balance_iterations += other.balance_iterations
        self.sweeps += other.sweeps


def _box_candidates(chunk_points: np.ndarray, centers: np.ndarray, influence: np.ndarray) -> np.ndarray | None:
    """Candidate center indices for a chunk, or ``None`` for "all centers"."""
    k = centers.shape[0]
    if k <= 2:
        return None
    bb = BoundingBox.from_points(chunk_points)
    min_eff = bb.min_dist(centers) / influence
    max_eff = bb.max_dist(centers) / influence
    threshold = np.partition(max_eff, 1)[1]  # second-smallest max_eff
    cand = np.flatnonzero(min_eff <= threshold)
    if cand.shape[0] >= k:
        return None
    return cand


def assign_points(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    config: BalancedKMeansConfig,
    stats: AssignStats | None = None,
) -> int:
    """One assignment sweep; updates ``assignment``/``ub``/``lb`` in place.

    Returns the number of points that needed evaluation (the rest were
    certified unchanged by their bounds).
    """
    n = points.shape[0]
    k = centers.shape[0]
    if config.use_bounds:
        need = np.flatnonzero(ub >= lb)
    else:
        need = np.arange(n, dtype=np.int64)
    if stats is not None:
        stats.sweeps += 1
        stats.points_total += n
        stats.points_skipped += n - need.shape[0]

    def process_chunk(chunk: np.ndarray) -> int:
        cpts = points[chunk]
        cand = _box_candidates(cpts, centers, influence) if config.use_box_pruning else None
        assign, best, second = top2_effective(cpts, centers, influence, cand)
        assignment[chunk] = assign
        ub[chunk] = best
        lb[chunk] = second
        return k if cand is None else cand.shape[0]

    chunks = [need[s : s + config.chunk_size] for s in range(0, need.shape[0], config.chunk_size)]
    executor = get_executor(config.n_threads) if len(chunks) > 1 else None
    if executor is None:
        evaluated_per_chunk = [process_chunk(chunk) for chunk in chunks]
    else:
        # chunks touch disjoint index ranges, so concurrent writes are safe
        evaluated_per_chunk = list(executor.map(process_chunk, chunks))
    if stats is not None:
        for chunk, evaluated in zip(chunks, evaluated_per_chunk):
            stats.center_evals += evaluated * chunk.shape[0]
            stats.center_evals_possible += k * chunk.shape[0]
    return int(need.shape[0])


@dataclass
class BalanceOutcome:
    """Result of one assign-and-balance phase."""

    influence: np.ndarray
    block_weights: np.ndarray
    imbalance: float
    balance_iterations: int = 0
    balanced: bool = False
    stats: AssignStats = field(default_factory=AssignStats)


def assign_and_balance(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    target_weights: np.ndarray,
    config: BalancedKMeansConfig,
) -> BalanceOutcome:
    """Algorithm 1: alternate assignment sweeps with influence adaptation.

    Mutates ``assignment``, ``ub``, ``lb`` in place; returns the new influence
    vector (the input array is not modified) plus balance diagnostics.
    """
    k = centers.shape[0]
    dim = points.shape[1]
    influence = np.array(influence, dtype=np.float64, copy=True)
    stats = AssignStats()
    block_w = np.zeros(k)
    imbalance = np.inf
    balanced = False
    iterations = 0
    for it in range(config.max_balance_iterations):
        iterations = it + 1
        assign_points(points, centers, influence, assignment, ub, lb, config, stats)
        block_w = np.bincount(assignment, weights=weights, minlength=k)
        imbalance = float((block_w / target_weights).max() - 1.0)
        if imbalance <= config.epsilon:
            balanced = True
            break
        if it == config.max_balance_iterations - 1:
            break  # keep influence consistent with the final assignment
        old_influence = influence
        influence = adapt_influence(
            influence,
            block_w,
            target_weights,
            dim,
            cap=config.influence_change_cap,
            floor=config.influence_floor,
            ceil=config.influence_ceil,
        )
        if config.use_bounds:
            relax_for_influence(ub, lb, assignment, old_influence, influence)
    stats.balance_iterations = iterations
    return BalanceOutcome(influence, block_w, imbalance, iterations, balanced, stats)
