"""Vectorised assign-and-balance phase (Algorithm 1).

The paper's inner loop is per-point; here the same logic is expressed over
numpy arrays:

- the Hamerly filter ``ub < lb`` selects, in one vector comparison, the
  points whose assignment provably cannot have changed (line 9);
- the remaining points are processed in chunks; per chunk, the bounding-box
  rule of §4.4 selects candidate centers *exactly*: a center whose minimum
  effective distance to the chunk's bounding box exceeds the second-smallest
  *maximum* effective distance of any center to that box can be neither the
  best nor the runner-up for any point in the box, so dropping it cannot
  change assignments or bounds (the two centers defining the threshold are
  always kept, making the rule self-consistent);
- after assignment, block weights are reduced and influence values adapted
  (Eq. 1); the loop repeats until balanced or the iteration cap is hit.

All sweep-invariant geometry (point norms, center norms, ``influence**-2``,
static SFC block boxes, scratch buffers) lives in a
:class:`~repro.core.kernels.SweepWorkspace` threaded through every call; the
top-2 reduction itself runs in squared space (see
:mod:`repro.geometry.distances`).  When ``sfc_sort`` is on, chunks are
aligned to the workspace's static blocks so the pruning rule reuses boxes
computed once per run and box-to-center distances computed once per phase.

Incremental engine (``config.use_incremental``, default on): the workspace's
per-sub-block bound aggregates certify whole sub-blocks unchanged without
reading any per-point array, so the per-sweep active scan runs only inside
woken sub-blocks (with an adaptive fallback to the global scan when the
trajectory is churning); each sweep additionally reports the per-cluster
*weight delta* of the assignments it changed, so :func:`assign_and_balance`
maintains the block weights incrementally instead of re-bincounting all
``n`` points every balance iteration, and the bound relaxations between
iterations use the candidate-local (cluster-exact) forms via the workspace.
Every relaxation keeps the bounds *valid*, and every evaluation is exact,
so assignments, influence, imbalance and block weights are identical to the
full path; see
:class:`~repro.core.config.BalancedKMeansConfig.use_incremental` for the
exactness caveat on non-integer weights.

In the distributed runtime the block-weight reduction (line 31, the only
communication in Algorithm 1) becomes an allreduce over ranks — of the
k-vector of deltas in incremental mode; all other steps read rank-local
arrays only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bounds import relax_for_influence, relax_for_influence_exclusive
from repro.core.config import BalancedKMeansConfig
from repro.core.influence import adapt_influence
from repro.core.kernels import SweepWorkspace, resolve_backend
from repro.core.parallel import get_executor
from repro.geometry.boxes import BoundingBox

__all__ = [
    "AssignStats",
    "assign_points",
    "assign_and_balance",
    "center_partial_sums",
    "diameter_partial_sums",
]


def center_partial_sums(
    points: np.ndarray, weights: np.ndarray, assignment: np.ndarray, k: int
) -> np.ndarray:
    """Rank-local ``k x (d+1)`` weighted coordinate sums + weight column.

    The per-rank summand of the center-update allreduce (Algorithm 2, line
    13).  Shared by the in-memory and out-of-core distributed runners —
    both feed the same per-rank arrays through the same bincounts, which is
    what keeps their center trajectories bit-identical.  Accepts memory
    maps: only reads.
    """
    dim = points.shape[1]
    sums = np.empty((k, dim + 1))
    for dd in range(dim):
        sums[:, dd] = np.bincount(assignment, weights=weights * points[:, dd], minlength=k)
    sums[:, dim] = np.bincount(assignment, weights=weights, minlength=k)
    return sums


def diameter_partial_sums(
    points: np.ndarray, weights: np.ndarray, assignment: np.ndarray, centers: np.ndarray
) -> np.ndarray:
    """Rank-local ``2k`` vector of weighted squared radii and weights.

    Summand of the erosion ``beta(C)`` allreduce (average cluster diameter
    as 2x the rms radius).  Shared across the distributed runners like
    :func:`center_partial_sums`.
    """
    k = centers.shape[0]
    diff = points - centers[assignment]
    sq = np.einsum("ij,ij->i", diff, diff)
    return np.concatenate([
        np.bincount(assignment, weights=sq * weights, minlength=k),
        np.bincount(assignment, weights=weights, minlength=k),
    ])


@dataclass
class AssignStats:
    """Counters validating the §4.3 claim that ~80 % of inner loops are skipped.

    ``blocks_total`` / ``blocks_skipped`` count aggregate *sub-blocks*
    certified unchanged by the incremental engine's block-level filter (a
    skipped sub-block never touches its per-point arrays; both stay 0 when
    the filter is parked or disabled).  ``points_changed`` counts
    assignments that actually flipped — the size of the weight deltas the
    incremental block-weight reduction is built from.
    """

    points_total: int = 0
    points_skipped: int = 0
    center_evals: int = 0
    center_evals_possible: int = 0
    balance_iterations: int = 0
    sweeps: int = 0
    blocks_total: int = 0
    blocks_skipped: int = 0
    points_changed: int = 0

    @property
    def skip_fraction(self) -> float:
        if self.points_total == 0:
            return 0.0
        return self.points_skipped / self.points_total

    @property
    def block_skip_fraction(self) -> float:
        """Fraction of static blocks certified unchanged without being scanned."""
        if self.blocks_total == 0:
            return 0.0
        return self.blocks_skipped / self.blocks_total

    @property
    def pruning_fraction(self) -> float:
        """Fraction of center evaluations avoided by bounding-box pruning."""
        if self.center_evals_possible == 0:
            return 0.0
        return 1.0 - self.center_evals / self.center_evals_possible

    def merge(self, other: "AssignStats") -> None:
        self.points_total += other.points_total
        self.points_skipped += other.points_skipped
        self.center_evals += other.center_evals
        self.center_evals_possible += other.center_evals_possible
        self.balance_iterations += other.balance_iterations
        self.sweeps += other.sweeps
        self.blocks_total += other.blocks_total
        self.blocks_skipped += other.blocks_skipped
        self.points_changed += other.points_changed


def _box_candidates(
    chunk_points: np.ndarray, centers: np.ndarray, inv_influence_sq: np.ndarray
) -> np.ndarray | None:
    """Candidate center indices for a chunk, or ``None`` for "all centers".

    Runs entirely in squared space (sqrt is monotone, so the §4.4 comparison
    is unchanged); ``inv_influence_sq`` is the per-sweep cached
    ``influence ** -2`` — callers convert influence once per sweep, not once
    per chunk.
    """
    k = centers.shape[0]
    if k <= 2:
        return None
    bb = BoundingBox.from_points(chunk_points)
    min_eff = bb.min_sq_dist(centers) * inv_influence_sq
    max_eff = bb.max_sq_dist(centers) * inv_influence_sq
    threshold = np.partition(max_eff, 1)[1]  # second-smallest max_eff
    cand = np.flatnonzero(min_eff <= threshold)
    if cand.shape[0] >= k:
        return None
    return cand


def _static_block_chunks(need: np.ndarray, workspace: SweepWorkspace) -> list[tuple[np.ndarray, int]]:
    """Split the sorted ``need`` indices along the workspace's static blocks.

    Returns ``(chunk, block_id)`` pairs for every non-empty block, so each
    chunk can look up its precomputed bounding-box candidate set.  One
    ``searchsorted`` over the block boundaries plus ``np.split`` — no
    per-block Python work; this runs once per sweep on the hot path.
    """
    block_size = workspace.block_size
    first = int(need[0]) // block_size
    last = int(need[-1]) // block_size
    if first == last:
        return [(need, first)]
    boundaries = np.arange(first + 1, last + 1, dtype=np.int64) * block_size
    cuts = np.searchsorted(need, boundaries)
    pieces = np.split(need, cuts)
    return [(piece, first + b) for b, piece in enumerate(pieces) if piece.shape[0]]


def _merge_sparse_chunks(
    tasks: list[tuple[np.ndarray, int]], workspace: SweepWorkspace, chunk_size: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Coalesce underfilled per-block chunks of a sparse sweep.

    When few points are active, per-static-block chunks hold a handful of
    points each and Python dispatch dominates the sweep.  Adjacent chunks
    are merged up to ``chunk_size`` points; the merged chunk is pruned with
    the *union* of its blocks' cached candidate sets — a superset of every
    member block's exact §4.4 set, so results are unchanged while dispatch
    count drops by roughly the fill factor.
    """
    mask = workspace._block_cand_mask
    counts = workspace._block_cand_counts
    merged: list[tuple[np.ndarray, np.ndarray]] = []
    acc: list[np.ndarray] = []
    acc_mask = None
    acc_n = 0
    cand_cap = 0

    def flush():
        nonlocal acc, acc_mask, acc_n, cand_cap
        if acc_n:
            chunk = acc[0] if len(acc) == 1 else np.concatenate(acc)
            merged.append((chunk, np.flatnonzero(acc_mask)))
        acc, acc_mask, acc_n, cand_cap = [], None, 0, 0

    for chunk, block in tasks:
        # keep the union candidate set close to the members' own sets: a
        # merge that doubles the candidates costs more in distance work
        # than it saves in dispatch
        if acc_n and (
            acc_n + chunk.shape[0] > chunk_size
            or int(np.count_nonzero(acc_mask | mask[block])) > cand_cap
        ):
            flush()
        acc.append(chunk)
        acc_mask = mask[block].copy() if acc_mask is None else acc_mask | mask[block]
        acc_n += chunk.shape[0]
        cand_cap = max(cand_cap, 2 * int(counts[block]) + 8)
    flush()
    return merged


def assign_points(
    points: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    config: BalancedKMeansConfig,
    stats: AssignStats | None = None,
    workspace: SweepWorkspace | None = None,
    weights: np.ndarray | None = None,
    delta_out: np.ndarray | None = None,
) -> int:
    """One assignment sweep; updates ``assignment``/``ub``/``lb`` in place.

    ``workspace`` carries cached geometry across sweeps (and runs); callers
    that sweep more than once over the same points should construct one
    :class:`~repro.core.kernels.SweepWorkspace` and reuse it.  When omitted,
    an ephemeral workspace is built for this sweep only.

    When ``weights`` and ``delta_out`` (a zero-initialised ``(k,)`` float
    array) are both given, the per-cluster weight delta of every assignment
    this sweep *changed* is accumulated into ``delta_out`` — per chunk, in
    block order — so callers can maintain block weights incrementally
    instead of re-bincounting all points.

    Returns the number of points that needed evaluation (the rest were
    certified unchanged by their bounds).
    """
    n = points.shape[0]
    k = centers.shape[0]
    if workspace is None:
        workspace = SweepWorkspace(points, config, k, ephemeral=True)
    elif workspace.points.shape != points.shape:
        raise ValueError(
            f"workspace was built for {workspace.points.shape} points, got {points.shape}"
        )
    else:
        configured = resolve_backend(getattr(config, "kernel_backend", "numpy"))
        if workspace.backend != configured:
            raise ValueError(
                f"workspace was built for kernel backend {workspace.backend!r} but the "
                f"config now resolves to {configured!r}; build a new SweepWorkspace to "
                "switch backends"
            )
    workspace.prepare(centers, influence)
    collect_delta = delta_out is not None and weights is not None

    # -- device path: the whole sweep runs on the torch engine ----------------
    if workspace.device_mode:
        evaluated, center_evals, changed, delta = workspace.device_sweep(
            assignment, ub, lb, config.use_bounds, weights if collect_delta else None
        )
        if collect_delta and delta is not None:
            delta_out += delta
        if stats is not None:
            stats.sweeps += 1
            stats.points_total += n
            stats.points_skipped += n - evaluated
            stats.center_evals += center_evals
            stats.center_evals_possible += k * evaluated
            stats.points_changed += changed
        return evaluated

    # -- fused numba path: one kernel call replaces the chunk orchestration --
    if (
        workspace.backend == "numba"
        and workspace.has_static_blocks
        and config.use_box_pruning
    ):  # pragma: no cover - requires numba
        evaluated, center_evals, delta, changed, blocks_active, blocks_total = workspace.fused_sweep(
            assignment, ub, lb, config.use_bounds, weights if collect_delta else None
        )
        if collect_delta:
            delta_out += delta
        if stats is not None:
            stats.sweeps += 1
            stats.points_total += n
            stats.points_skipped += n - evaluated
            stats.center_evals += center_evals
            stats.center_evals_possible += k * evaluated
            stats.blocks_total += blocks_total
            stats.blocks_skipped += blocks_total - blocks_active
            stats.points_changed += changed
        return evaluated

    # -- active-point selection ---------------------------------------------
    # In incremental mode with valid aggregates, the scan runs only inside
    # woken sub-blocks: a sub-block whose max_ub < min_lb is certified
    # unchanged without reading per-point arrays (pending relaxations are
    # replayed for woken sub-blocks first).  The selected set is *identical*
    # to the global flatnonzero(ub >= lb) — the aggregates are conservative
    # by invariant.
    woken: np.ndarray | None = None
    selection = None
    if config.use_bounds:
        selection = workspace.begin_incremental_sweep(assignment, ub, lb)
    if selection is not None:
        need, woken = selection
        need_count = int(need.shape[0])
        if stats is not None:
            stats.blocks_total += workspace.n_subs
            stats.blocks_skipped += workspace.n_subs - int(woken.shape[0])
    elif config.use_bounds:
        need = np.flatnonzero(ub >= lb)
        need_count = int(need.shape[0])
    else:
        need_count = n
        if n > 0:
            need = np.arange(n, dtype=np.int64)
    if stats is not None:
        stats.sweeps += 1
        stats.points_total += n
        stats.points_skipped += n - need_count
    if need_count == 0:
        if woken is not None:
            workspace.end_incremental_sweep(woken, ub, lb)
        elif workspace.incremental and n > 0:
            workspace.maybe_refresh_all(assignment, ub, lb)
        return 0

    inv_influence_sq = workspace.inv_influence_sq

    def process_chunk(task: tuple[np.ndarray, int]) -> tuple[int, np.ndarray | None, int]:
        chunk, block = task
        # contiguous chunks (the common case on cold sweeps) gather and
        # scatter through slices, avoiding fancy-indexing copies
        if int(chunk[-1]) - int(chunk[0]) + 1 == chunk.shape[0]:
            sel = slice(int(chunk[0]), int(chunk[-1]) + 1)
        else:
            sel = chunk
        cpts = points[sel]
        if not config.use_box_pruning:
            cand = None
        elif isinstance(block, np.ndarray):
            cand = block if block.shape[0] < k else None  # merged-chunk union set
        elif block >= 0:
            cand = workspace.block_candidates(block)
        else:
            cand = _box_candidates(cpts, centers, inv_influence_sq)
        old = assignment[sel].copy() if collect_delta else None
        assign, best, second = workspace.top2(cpts, sel, cand)
        assignment[sel] = assign
        ub[sel] = best
        lb[sel] = second
        delta_local = None
        changed_count = 0
        if collect_delta:
            changed = np.flatnonzero(assign != old)
            changed_count = int(changed.shape[0])
            if changed_count:
                wc = weights[sel][changed]
                delta_local = np.bincount(assign[changed], weights=wc, minlength=k)
                delta_local -= np.bincount(old[changed], weights=wc, minlength=k)
        return (k if cand is None else cand.shape[0]), delta_local, changed_count

    if workspace.has_static_blocks and config.use_box_pruning:
        tasks = _static_block_chunks(need, workspace)
        if workspace.incremental and len(tasks) > 4 * (need_count // config.chunk_size + 1):
            tasks = _merge_sparse_chunks(tasks, workspace, config.chunk_size)
    else:
        tasks = [(need[s : s + config.chunk_size], -1) for s in range(0, need.shape[0], config.chunk_size)]
    executor = get_executor(config.n_threads) if len(tasks) > 1 else None
    if executor is None:
        results = [process_chunk(task) for task in tasks]
    else:
        # chunks touch disjoint index ranges, so concurrent writes are safe
        results = list(executor.map(process_chunk, tasks))
    if collect_delta:
        for _, delta_local, _ in results:
            if delta_local is not None:
                delta_out += delta_local
    if stats is not None:
        for (chunk, _), (cand_count, _, changed_count) in zip(tasks, results):
            stats.center_evals += cand_count * chunk.shape[0]
            stats.center_evals_possible += k * chunk.shape[0]
            stats.points_changed += changed_count
    if woken is not None:
        workspace.end_incremental_sweep(woken, ub, lb)
    elif workspace.incremental:
        # first bounded sweep (or a sweep with bounds off): every per-point
        # bound is now current, so seed all aggregates once
        workspace.maybe_refresh_all(assignment, ub, lb)
    return need_count


@dataclass
class BalanceOutcome:
    """Result of one assign-and-balance phase."""

    influence: np.ndarray
    block_weights: np.ndarray
    imbalance: float
    balance_iterations: int = 0
    balanced: bool = False
    stats: AssignStats = field(default_factory=AssignStats)


def assign_and_balance(
    points: np.ndarray,
    weights: np.ndarray,
    centers: np.ndarray,
    influence: np.ndarray,
    assignment: np.ndarray,
    ub: np.ndarray,
    lb: np.ndarray,
    target_weights: np.ndarray,
    config: BalancedKMeansConfig,
    workspace: SweepWorkspace | None = None,
    initial_block_weights: np.ndarray | None = None,
) -> BalanceOutcome:
    """Algorithm 1: alternate assignment sweeps with influence adaptation.

    Mutates ``assignment``, ``ub``, ``lb`` in place; returns the new influence
    vector (the input array is not modified) plus balance diagnostics.
    ``workspace`` (optional) is reused across the phase's sweeps; the phase
    geometry is refreshed unconditionally on entry, so callers may mutate
    ``centers`` in place between phases.

    In incremental mode the block weights are maintained from per-sweep
    assignment deltas: one full ``bincount`` when the phase has no prior
    weight vector, then ``block_w += delta`` per balance iteration.
    ``initial_block_weights`` lets a caller skip even that first full
    reduction by passing the previous phase's block weights — valid only
    when ``assignment`` is untouched since they were computed.

    On a device backend the whole loop runs inside one device session:
    assignment/ub/lb upload once on entry and download once on exit, and
    each balance iteration exchanges only k-sized vectors (block weights,
    influence ratios) with the device.
    """
    k = centers.shape[0]
    dim = points.shape[1]
    influence = np.array(influence, dtype=np.float64, copy=True)
    if workspace is None:
        workspace = SweepWorkspace(points, config, k)
    workspace.begin_phase(centers)
    incremental = workspace.incremental
    device = workspace.device_mode
    stats = AssignStats()
    block_w: np.ndarray | None = None
    if incremental and initial_block_weights is not None:
        block_w = np.array(initial_block_weights, dtype=np.float64, copy=True)
    imbalance = np.inf
    balanced = False
    iterations = 0
    if device:
        # device-resident session: the per-point state uploads once here and
        # downloads once in the finally below, so the balance iterations in
        # between exchange only k-sized vectors with the device (the host
        # assignment/ub/lb arrays are stale until the session ends)
        workspace.begin_device_session(assignment, ub, lb, weights)
    try:
        for it in range(config.max_balance_iterations):
            iterations = it + 1
            if device:
                assign_points(points, centers, influence, assignment, ub, lb, config, stats, workspace)
                block_w = workspace.device_block_weights(assignment, weights)
            elif incremental and block_w is not None:
                delta = np.zeros(k)
                assign_points(points, centers, influence, assignment, ub, lb, config, stats,
                              workspace, weights=weights, delta_out=delta)
                block_w = block_w + delta
            else:
                assign_points(points, centers, influence, assignment, ub, lb, config, stats, workspace)
                block_w = np.bincount(assignment, weights=weights, minlength=k)
            imbalance = float((block_w / target_weights).max() - 1.0)
            if imbalance <= config.epsilon:
                balanced = True
                break
            if it == config.max_balance_iterations - 1:
                break  # keep influence consistent with the final assignment
            old_influence = influence
            influence = adapt_influence(
                influence,
                block_w,
                target_weights,
                dim,
                cap=config.influence_change_cap,
                floor=config.influence_floor,
                ceil=config.influence_ceil,
            )
            if config.use_bounds:
                if device:
                    workspace.device_relax_influence(old_influence, influence)
                elif not (incremental and workspace.queue_relax_influence(assignment, ub, lb, old_influence, influence)):
                    relax = relax_for_influence_exclusive if incremental else relax_for_influence
                    ratio_max, ratio_min = relax(ub, lb, assignment, old_influence, influence)
                    workspace.note_influence_relax(ratio_max, ratio_min)
    finally:
        if device:
            workspace.end_device_session()
    stats.balance_iterations = iterations
    return BalanceOutcome(influence, block_w, imbalance, iterations, balanced, stats)
