"""Delaunay-triangulation meshes of random points (the ``delaunayX`` family).

The paper's scaling experiments run on Delaunay triangulations of uniform
random points in the unit square/cube with up to 2 x 10^9 vertices (generated
with the distributed generator of Funke et al.).  We reproduce the same
family with :func:`scipy.spatial.Delaunay` at tractable sizes; the structure
(planar in 2-D, average degree ~6 / ~15.5, uniform density) is identical.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
from scipy.spatial import Delaunay

from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["delaunay_mesh", "delaunay_edges"]


def delaunay_edges(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Triangulate ``points`` and return (unique undirected edges, simplices)."""
    tri = Delaunay(points)
    simplices = tri.simplices
    d = points.shape[1]
    pairs = list(combinations(range(d + 1), 2))
    edges = np.concatenate([simplices[:, list(p)] for p in pairs], axis=0)
    return edges, simplices


def delaunay_mesh(
    n: int,
    dim: int = 2,
    rng: int | np.random.Generator | None = None,
    points: np.ndarray | None = None,
    name: str = "",
) -> GeometricMesh:
    """Delaunay triangulation of ``n`` uniform random points in the unit cube.

    Parameters
    ----------
    points:
        If given, triangulate these instead of sampling (``n``/``dim``/``rng``
        are then ignored).
    """
    if points is None:
        if n < dim + 1:
            raise ValueError(f"need at least {dim + 1} points for a {dim}-D triangulation, got n={n}")
        gen = ensure_rng(rng)
        points = gen.random((int(n), dim))
    points = np.asarray(points, dtype=np.float64)
    edges, simplices = delaunay_edges(points)
    label = name or f"delaunay{points.shape[1]}d_{points.shape[0]}"
    return GeometricMesh.from_edges(points, edges, name=label, cells=simplices)
