"""Random geometric graphs (the DIMACS ``rgg_n`` family).

Vertices are uniform random points; edges connect pairs within radius ``r``.
The DIMACS instances use ``r`` slightly above the connectivity threshold,
which we default to as well: ``r = c * (log n / n)^(1/d)``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["rgg_mesh", "connectivity_radius"]


def connectivity_radius(n: int, dim: int, factor: float = 0.7) -> float:
    """Radius ``factor`` times the asymptotic connectivity threshold."""
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    # Threshold for G(n, r) in [0,1]^d: r* ~ (log n / (v_d n))^(1/d) with v_d
    # the unit-ball volume; the constant is absorbed into `factor`.
    return float(factor * (np.log(n) / n) ** (1.0 / dim))


def rgg_mesh(
    n: int,
    dim: int = 2,
    radius: float | None = None,
    rng: int | np.random.Generator | None = None,
    name: str = "",
) -> GeometricMesh:
    """Random geometric graph on ``n`` uniform points in the unit cube."""
    if dim not in (2, 3):
        raise ValueError(f"dim must be 2 or 3, got {dim}")
    gen = ensure_rng(rng)
    points = gen.random((int(n), dim))
    r = connectivity_radius(n, dim) if radius is None else float(radius)
    if r <= 0:
        raise ValueError(f"radius must be positive, got {r}")
    tree = cKDTree(points)
    pairs = tree.query_pairs(r, output_type="ndarray")
    label = name or f"rgg{dim}d_{n}"
    return GeometricMesh.from_edges(points, pairs, name=label)
