"""2-D finite-element-style meshes (DIMACS FEM lookalikes).

``airfoil_mesh`` mimics NACA0015/M6-type meshes: a NACA 4-digit profile in a
flow domain, with density graded towards the airfoil surface and the interior
of the profile removed.  ``graded_fem_mesh`` is the generic machinery: any
set of point/segment attractor features with per-feature strength produces a
graded triangulation (used for the AS365 / NLR / 333SP stand-ins).
"""

from __future__ import annotations

import numpy as np

from repro.mesh._sampling import rejection_sample
from repro.mesh.delaunay import delaunay_edges
from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["airfoil_mesh", "graded_fem_mesh", "naca_half_thickness"]


def naca_half_thickness(x: np.ndarray, thickness: float = 0.15) -> np.ndarray:
    """Half-thickness of a NACA 4-digit symmetric profile at chord fraction x."""
    x = np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)
    return (
        5.0
        * thickness
        * (
            0.2969 * np.sqrt(x)
            - 0.1260 * x
            - 0.3516 * x**2
            + 0.2843 * x**3
            - 0.1015 * x**4
        )
    )


def _airfoil_signed_dist(points: np.ndarray, le: float, chord: float, yc: float, thickness: float) -> np.ndarray:
    """Approximate signed distance to the airfoil surface (negative inside)."""
    xf = (points[:, 0] - le) / chord
    half = naca_half_thickness(xf, thickness) * chord
    inside_chord = (xf >= 0.0) & (xf <= 1.0)
    dy = np.abs(points[:, 1] - yc)
    vert = dy - half
    # off-chord: distance to nearest chord endpoint line
    x_clip = np.clip(xf, 0.0, 1.0)
    dx = (np.abs(xf - x_clip)) * chord
    dist = np.where(inside_chord, vert, np.sqrt(dx**2 + np.maximum(vert, 0.0) ** 2))
    return dist


def airfoil_mesh(
    n: int,
    thickness: float = 0.15,
    rng: int | np.random.Generator | None = None,
    name: str = "naca-like",
) -> GeometricMesh:
    """FEM-style mesh around a NACA profile; interior of the profile removed."""
    gen = ensure_rng(rng)
    le, chord, yc = 0.3, 0.4, 0.5  # leading edge x, chord length, camber line y

    def density(p: np.ndarray) -> np.ndarray:
        d = _airfoil_signed_dist(p, le, chord, yc, thickness)
        dens = 1.0 + 40.0 * np.exp(-((np.abs(d) / 0.03) ** 2))
        dens[d < 0] = 0.0
        return dens

    pts = rejection_sample(int(n), 2, density, gen)
    edges, cells = delaunay_edges(pts)
    centroids = pts[cells].mean(axis=1)
    keep = _airfoil_signed_dist(centroids, le, chord, yc, thickness) > 0.0
    keep_cells = cells[keep]
    kept_edges = np.concatenate(
        [keep_cells[:, [0, 1]], keep_cells[:, [1, 2]], keep_cells[:, [0, 2]]], axis=0
    )
    mesh = GeometricMesh.from_edges(pts, kept_edges, name=name, cells=keep_cells)
    return mesh.largest_component()


def graded_fem_mesh(
    n: int,
    n_features: int = 5,
    refine: float = 25.0,
    sigma: float = 0.05,
    rng: int | np.random.Generator | None = None,
    name: str = "fem-like",
) -> GeometricMesh:
    """Graded triangle mesh refined towards random segment features.

    Stand-in for the multi-component FEM meshes (AS365, NLR, 333SP): several
    independent refinement regions of differing strength inside one domain.
    """
    gen = ensure_rng(rng)
    seg_a = gen.uniform(0.1, 0.9, size=(int(n_features), 2))
    angles = gen.uniform(0.0, 2 * np.pi, size=int(n_features))
    lengths = gen.uniform(0.1, 0.35, size=int(n_features))
    seg_b = np.clip(seg_a + lengths[:, None] * np.column_stack([np.cos(angles), np.sin(angles)]), 0.02, 0.98)
    strengths = gen.uniform(0.3, 1.0, size=int(n_features)) * refine

    def density(p: np.ndarray) -> np.ndarray:
        from repro.mesh._sampling import dist_to_segments

        d = dist_to_segments(p, seg_a, seg_b)
        return 1.0 + (strengths[None, :] * np.exp(-((d / sigma) ** 2))).sum(axis=1)

    pts = rejection_sample(int(n), 2, density, gen)
    edges, cells = delaunay_edges(pts)
    return GeometricMesh.from_edges(pts, edges, name=name, cells=cells)
