"""Mesh I/O: METIS graph format plus coordinate sidecar files.

The DIMACS challenge distributes meshes in METIS format (``.graph``) with a
separate ``.xyz`` coordinate file; Geographer and the Zoltan drivers consume
the same pair.  Supporting the format makes this library interoperable with
the original tools' inputs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.mesh.graph import GeometricMesh

__all__ = ["write_metis", "read_metis", "write_coords", "read_coords"]


def write_metis(mesh: GeometricMesh, path: str, with_weights: bool | None = None) -> None:
    """Write the adjacency in METIS format.

    Header: ``n m [fmt]`` with ``fmt=010`` when node weights are present.
    Vertex ids are 1-based per the format spec.
    """
    if with_weights is None:
        with_weights = not np.all(mesh.node_weights == 1.0)
    lines = []
    fmt = " 010" if with_weights else ""
    lines.append(f"{mesh.n} {mesh.m}{fmt}")
    indptr, indices = mesh.indptr, mesh.indices
    w = mesh.node_weights
    for v in range(mesh.n):
        nbrs = (indices[indptr[v] : indptr[v + 1]] + 1).tolist()
        if with_weights:
            lines.append(" ".join([str(int(w[v]))] + [str(x) for x in nbrs]))
        else:
            lines.append(" ".join(str(x) for x in nbrs))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def read_metis(path: str, coords: np.ndarray | None = None, name: str = "") -> GeometricMesh:
    """Read a METIS graph; ``coords`` may be supplied or read via :func:`read_coords`."""
    with open(path) as fh:
        raw = [line.split("%", 1)[0].strip() for line in fh]
    rows = [line for line in raw if line]
    header = rows[0].split()
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "000"
    fmt = fmt.zfill(3)
    has_vweights = fmt[1] == "1"
    if fmt[2] == "1":
        raise NotImplementedError("edge weights are not supported")
    if len(rows) - 1 != n:
        raise ValueError(f"expected {n} vertex lines, found {len(rows) - 1}")
    weights = np.ones(n)
    edges = []
    for v, line in enumerate(rows[1:]):
        fields = [int(x) for x in line.split()]
        if has_vweights:
            weights[v] = fields[0]
            fields = fields[1:]
        for u in fields:
            edges.append((v, u - 1))
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if coords is None:
        base, _ = os.path.splitext(path)
        xyz = base + ".xyz"
        if os.path.exists(xyz):
            coords = read_coords(xyz)
        else:
            raise ValueError(f"no coordinates given and {xyz} not found")
    mesh = GeometricMesh.from_edges(coords, edges, node_weights=weights, name=name or os.path.basename(path))
    if mesh.m != m:
        raise ValueError(f"header declares {m} edges but file contains {mesh.m}")
    return mesh


def write_coords(coords: np.ndarray, path: str) -> None:
    """One vertex per line, whitespace-separated coordinates."""
    np.savetxt(path, coords, fmt="%.17g")


def read_coords(path: str) -> np.ndarray:
    coords = np.loadtxt(path, dtype=np.float64, ndmin=2)
    return coords
