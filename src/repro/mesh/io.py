"""Mesh I/O: METIS graph format plus coordinate sidecar files.

The DIMACS challenge distributes meshes in METIS format (``.graph``) with a
separate ``.xyz`` coordinate file; Geographer and the Zoltan drivers consume
the same pair.  Supporting the format makes this library interoperable with
the original tools' inputs.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.mesh.graph import GeometricMesh

__all__ = [
    "write_metis",
    "read_metis",
    "read_metis_header",
    "iter_metis_weights",
    "write_coords",
    "read_coords",
    "coords_meta",
    "iter_coords",
]


def write_metis(mesh: GeometricMesh, path: str, with_weights: bool | None = None) -> None:
    """Write the adjacency in METIS format.

    Header: ``n m [fmt]`` with ``fmt=010`` when node weights are present.
    Vertex ids are 1-based per the format spec.
    """
    if with_weights is None:
        with_weights = not np.all(mesh.node_weights == 1.0)
    lines = []
    fmt = " 010" if with_weights else ""
    lines.append(f"{mesh.n} {mesh.m}{fmt}")
    indptr, indices = mesh.indptr, mesh.indices
    w = mesh.node_weights
    for v in range(mesh.n):
        nbrs = (indices[indptr[v] : indptr[v + 1]] + 1).tolist()
        if with_weights:
            lines.append(" ".join([str(int(w[v]))] + [str(x) for x in nbrs]))
        else:
            lines.append(" ".join(str(x) for x in nbrs))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


def read_metis(path: str, coords: np.ndarray | None = None, name: str = "") -> GeometricMesh:
    """Read a METIS graph; ``coords`` may be supplied or read via :func:`read_coords`."""
    with open(path) as fh:
        raw = [line.split("%", 1)[0].strip() for line in fh]
    rows = [line for line in raw if line]
    header = rows[0].split()
    n, m = int(header[0]), int(header[1])
    fmt = header[2] if len(header) > 2 else "000"
    fmt = fmt.zfill(3)
    has_vweights = fmt[1] == "1"
    if fmt[2] == "1":
        raise NotImplementedError("edge weights are not supported")
    if len(rows) - 1 != n:
        raise ValueError(f"expected {n} vertex lines, found {len(rows) - 1}")
    weights = np.ones(n)
    edges = []
    for v, line in enumerate(rows[1:]):
        fields = [int(x) for x in line.split()]
        if has_vweights:
            weights[v] = fields[0]
            fields = fields[1:]
        for u in fields:
            edges.append((v, u - 1))
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if coords is None:
        base, _ = os.path.splitext(path)
        xyz = base + ".xyz"
        if os.path.exists(xyz):
            coords = read_coords(xyz)
        else:
            raise ValueError(f"no coordinates given and {xyz} not found")
    mesh = GeometricMesh.from_edges(coords, edges, node_weights=weights, name=name or os.path.basename(path))
    if mesh.m != m:
        raise ValueError(f"header declares {m} edges but file contains {mesh.m}")
    return mesh


def read_metis_header(path: str) -> tuple[int, int, str]:
    """``(n, m, fmt)`` from a METIS file's header line, without parsing the body.

    The eager :func:`read_metis` builds the whole edge list in memory; the
    out-of-core manifest builder only needs the counts and the weight flag,
    so this stops at the first non-comment line.
    """
    with open(path) as fh:
        for line in fh:
            row = line.split("%", 1)[0].strip()
            if not row:
                continue
            header = row.split()
            n, m = int(header[0]), int(header[1])
            fmt = (header[2] if len(header) > 2 else "000").zfill(3)
            return n, m, fmt
    raise ValueError(f"{path}: no header line found")


def iter_metis_weights(path: str, chunk_rows: int = 65_536) -> Iterator[np.ndarray]:
    """Stream vertex weights from a METIS file in bounded chunks.

    Yields float64 arrays of up to ``chunk_rows`` weights in vertex order
    (all ones when the format has no vertex weights), holding one chunk and
    one text line in memory at a time — the lazy counterpart of
    :func:`read_metis` for dataset conversion.
    """
    n, _, fmt = read_metis_header(path)
    has_vweights = fmt[1] == "1"
    if fmt[2] == "1":
        raise NotImplementedError("edge weights are not supported")
    buf: list[float] = []
    seen = 0
    with open(path) as fh:
        first = True
        for line in fh:
            row = line.split("%", 1)[0].strip()
            if not row:
                continue
            if first:  # header
                first = False
                continue
            seen += 1
            buf.append(float(row.split(None, 1)[0]) if has_vweights else 1.0)
            if len(buf) >= chunk_rows:
                yield np.asarray(buf, dtype=np.float64)
                buf = []
    if seen != n:
        raise ValueError(f"{path}: header declares {n} vertices, found {seen}")
    if buf:
        yield np.asarray(buf, dtype=np.float64)


def write_coords(coords: np.ndarray, path: str) -> None:
    """One vertex per line, whitespace-separated coordinates."""
    np.savetxt(path, coords, fmt="%.17g")


def read_coords(path: str) -> np.ndarray:
    coords = np.loadtxt(path, dtype=np.float64, ndmin=2)
    return coords


def coords_meta(path: str) -> tuple[int, int]:
    """``(rows, dim)`` of a coordinate file from a single streaming pass.

    Reads the dimensionality off the first data line and counts the rest
    line-by-line — no array is materialised, unlike :func:`read_coords`.
    """
    rows, dim = 0, 0
    with open(path) as fh:
        for line in fh:
            fields = line.split()
            if not fields:
                continue
            if rows == 0:
                dim = len(fields)
            rows += 1
    if rows == 0:
        raise ValueError(f"{path}: no coordinate rows found")
    return rows, dim


def iter_coords(path: str, chunk_rows: int = 65_536) -> Iterator[np.ndarray]:
    """Stream a coordinate file as (<=chunk_rows, dim) float64 chunks.

    The lazy counterpart of :func:`read_coords`: bounded memory regardless
    of file size, which is what the sharded-dataset converter consumes.
    """
    buf: list[list[float]] = []
    dim = 0
    with open(path) as fh:
        for line in fh:
            fields = line.split()
            if not fields:
                continue
            if dim == 0:
                dim = len(fields)
            elif len(fields) != dim:
                raise ValueError(f"{path}: inconsistent dimensionality ({len(fields)} vs {dim})")
            buf.append([float(x) for x in fields])
            if len(buf) >= chunk_rows:
                yield np.asarray(buf, dtype=np.float64)
                buf = []
    if buf:
        yield np.asarray(buf, dtype=np.float64)
