"""Named mesh instances mirroring the paper's test set (scaled down).

Each entry maps a paper instance to a generator from the same structural
family, at a default size that keeps the full experiment suite tractable on
one machine.  ``scale`` multiplies the default vertex count, so the same
registry drives both quick tests (scale << 1) and larger reproduction runs.

Instance classes follow Figure 2's grouping:

- ``dimacs2d``   — 2-D geometric meshes from the DIMACS collection,
- ``climate25d`` — 2.5-D node-weighted climate meshes,
- ``mesh3d``     — Alya and 3-D Delaunay meshes,
- ``delaunay2d`` — the DelaunayX weak-scaling series (Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.mesh.adaptive import hugebubbles_like, hugetrace_like, hugetric_like
from repro.mesh.alya import airway_mesh
from repro.mesh.climate import climate_mesh
from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.fem2d import airfoil_mesh, graded_fem_mesh
from repro.mesh.graph import GeometricMesh
from repro.mesh.rgg import rgg_mesh

__all__ = ["InstanceSpec", "REGISTRY", "make_instance", "instance_names", "instances_in_class"]


@dataclass(frozen=True)
class InstanceSpec:
    """A named benchmark instance: paper graph -> scaled synthetic twin."""

    name: str
    paper_name: str
    instance_class: str  # dimacs2d | climate25d | mesh3d | delaunay2d
    default_n: int
    generator: Callable[[int, int], GeometricMesh]  # (n, seed) -> mesh
    paper_n: int | None = None
    weighted: bool = False

    def make(self, scale: float = 1.0, seed: int = 0) -> GeometricMesh:
        n = max(64, int(round(self.default_n * scale)))
        mesh = self.generator(n, seed)
        mesh.name = self.name
        return mesh


def _spec(name, paper_name, cls, default_n, gen, paper_n=None, weighted=False) -> InstanceSpec:
    return InstanceSpec(name, paper_name, cls, default_n, gen, paper_n, weighted)


REGISTRY: dict[str, InstanceSpec] = {
    spec.name: spec
    for spec in [
        # --- 2-D DIMACS meshes -------------------------------------------
        _spec("hugetric", "hugetric-00020", "dimacs2d", 15000,
              lambda n, s: hugetric_like(n, rng=s), paper_n=7_122_792),
        _spec("hugetrace", "hugetrace-00020", "dimacs2d", 15000,
              lambda n, s: hugetrace_like(n, rng=s), paper_n=16_002_413),
        _spec("hugebubbles", "hugebubbles-00020", "dimacs2d", 15000,
              lambda n, s: hugebubbles_like(n, rng=s), paper_n=21_198_119),
        _spec("333SP", "333SP", "dimacs2d", 12000,
              lambda n, s: graded_fem_mesh(n, n_features=8, rng=s, name="333SP"), paper_n=3_712_815),
        _spec("AS365", "AS365", "dimacs2d", 12000,
              lambda n, s: graded_fem_mesh(n, n_features=4, rng=s, name="AS365"), paper_n=3_799_275),
        _spec("M6", "M6", "dimacs2d", 12000,
              lambda n, s: airfoil_mesh(n, thickness=0.12, rng=s, name="M6"), paper_n=3_501_776),
        _spec("NACA0015", "NACA0015", "dimacs2d", 10000,
              lambda n, s: airfoil_mesh(n, thickness=0.15, rng=s, name="NACA0015"), paper_n=1_039_183),
        _spec("NLR", "NLR", "dimacs2d", 12000,
              lambda n, s: graded_fem_mesh(n, n_features=6, rng=s, name="NLR"), paper_n=4_163_763),
        _spec("rgg2d", "rgg_n_2_20", "dimacs2d", 12000,
              lambda n, s: rgg_mesh(n, dim=2, rng=s), paper_n=1 << 20),
        # --- 2.5-D climate meshes ----------------------------------------
        _spec("fesom_f2glo", "fesom-f2glo04", "climate25d", 12000,
              lambda n, s: climate_mesh(n, rng=s, name="fesom_f2glo"), paper_n=5_945_730, weighted=True),
        _spec("fesom_fron", "fesom-fron", "climate25d", 12000,
              lambda n, s: climate_mesh(n, land_fraction=0.45, rng=s, name="fesom_fron"),
              paper_n=5_007_727, weighted=True),
        _spec("fesom_jigsaw", "fesom-jigsaw", "climate25d", 14000,
              lambda n, s: climate_mesh(n, land_fraction=0.25, rng=s, name="fesom_jigsaw"),
              paper_n=14_349_744, weighted=True),
        # --- 3-D meshes ---------------------------------------------------
        _spec("alyaA", "alyaTestCaseA", "mesh3d", 12000,
              lambda n, s: airway_mesh(n, levels=2, rng=s, name="alyaA"), paper_n=9_938_375),
        _spec("alyaB", "alyaTestCaseB", "mesh3d", 20000,
              lambda n, s: airway_mesh(n, levels=3, rng=s, name="alyaB"), paper_n=30_959_144),
        _spec("delaunay3d", "delaunay 3D (Funke et al.)", "mesh3d", 10000,
              lambda n, s: delaunay_mesh(n, dim=3, rng=s), paper_n=16_000_000),
        _spec("rgg3d", "rdg-3d", "mesh3d", 10000,
              lambda n, s: rgg_mesh(n, dim=3, rng=s), paper_n=4_194_304),
        # --- 2-D Delaunay scaling series ----------------------------------
        _spec("delaunay2d_s", "delaunay8M", "delaunay2d", 8000,
              lambda n, s: delaunay_mesh(n, dim=2, rng=s), paper_n=8_000_000),
        _spec("delaunay2d_m", "delaunay250M", "delaunay2d", 25000,
              lambda n, s: delaunay_mesh(n, dim=2, rng=s), paper_n=250_000_000),
        _spec("delaunay2d_l", "delaunay2B", "delaunay2d", 60000,
              lambda n, s: delaunay_mesh(n, dim=2, rng=s), paper_n=2_000_000_000),
    ]
}


def make_instance(name: str, scale: float = 1.0, seed: int = 0) -> GeometricMesh:
    """Build a registry instance by name. ``scale`` multiplies the vertex count."""
    if name not in REGISTRY:
        raise KeyError(f"unknown instance {name!r}; available: {sorted(REGISTRY)}")
    return REGISTRY[name].make(scale=scale, seed=seed)


def instance_names() -> list[str]:
    return sorted(REGISTRY)


def instances_in_class(instance_class: str) -> list[str]:
    """Instance names in a Figure-2 class (dimacs2d / climate25d / mesh3d / delaunay2d)."""
    names = [s.name for s in REGISTRY.values() if s.instance_class == instance_class]
    if not names:
        raise KeyError(f"unknown instance class {instance_class!r}")
    return sorted(names)
