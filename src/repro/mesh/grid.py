"""Structured grid meshes.

Not part of the paper's test set, but invaluable for tests: partition
quality and balance on a uniform grid have closed-form expectations (e.g.
RCB on a 2^a x 2^b grid with k = 2^c blocks is perfectly balanced).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh

__all__ = ["grid_mesh"]


def grid_mesh(shape: tuple[int, ...], name: str = "") -> GeometricMesh:
    """Axis-aligned lattice with unit spacing and 2d-neighbour connectivity.

    Parameters
    ----------
    shape:
        ``(nx, ny)`` or ``(nx, ny, nz)`` — number of vertices per axis.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) not in (2, 3):
        raise ValueError(f"shape must have 2 or 3 entries, got {shape}")
    if any(s < 1 for s in shape):
        raise ValueError(f"all shape entries must be >= 1, got {shape}")
    dim = len(shape)
    axes = [np.arange(s, dtype=np.float64) for s in shape]
    mesh_axes = np.meshgrid(*axes, indexing="ij")
    coords = np.column_stack([ax.ravel() for ax in mesh_axes])

    ids = np.arange(int(np.prod(shape)), dtype=np.int64).reshape(shape)
    edge_parts = []
    for axis in range(dim):
        sl_lo = [slice(None)] * dim
        sl_hi = [slice(None)] * dim
        sl_lo[axis] = slice(None, -1)
        sl_hi[axis] = slice(1, None)
        edge_parts.append(
            np.column_stack([ids[tuple(sl_lo)].ravel(), ids[tuple(sl_hi)].ravel()])
        )
    edges = np.concatenate(edge_parts, axis=0) if edge_parts else np.empty((0, 2), dtype=np.int64)
    label = name or f"grid{'x'.join(str(s) for s in shape)}"
    return GeometricMesh.from_edges(coords, edges, name=label)
