"""Meshes: the geometric-graph data structure and synthetic generators.

The paper evaluates on DIMACS meshes, FESOM climate meshes, Alya 3-D meshes,
random geometric graphs and Delaunay triangulations.  Those input files are
not redistributable (and the largest have billions of edges), so this package
provides *generators* that reproduce each family's structural properties at
configurable scale — see DESIGN.md §2 for the substitution argument.
"""

from repro.mesh.graph import GeometricMesh
from repro.mesh.grid import grid_mesh
from repro.mesh.delaunay import delaunay_mesh
from repro.mesh.rgg import rgg_mesh
from repro.mesh.adaptive import (
    hugebubbles_like,
    hugetrace_like,
    hugetric_like,
    refinement_sequence,
)
from repro.mesh.fem2d import airfoil_mesh, graded_fem_mesh
from repro.mesh.climate import climate_mesh
from repro.mesh.alya import airway_mesh
from repro.mesh.registry import (
    REGISTRY,
    InstanceSpec,
    instance_names,
    instances_in_class,
    make_instance,
)

__all__ = [
    "GeometricMesh",
    "grid_mesh",
    "delaunay_mesh",
    "rgg_mesh",
    "hugetric_like",
    "hugetrace_like",
    "hugebubbles_like",
    "refinement_sequence",
    "airfoil_mesh",
    "graded_fem_mesh",
    "climate_mesh",
    "airway_mesh",
    "REGISTRY",
    "InstanceSpec",
    "make_instance",
    "instance_names",
    "instances_in_class",
]
