"""The geometric-graph data structure shared by generators, partitioners and metrics.

A :class:`GeometricMesh` is an undirected graph stored in CSR form together
with vertex coordinates and optional vertex weights.  Geometric partitioners
read only ``coords``/``node_weights``; graph metrics (edge cut, communication
volume, diameter) read the adjacency.  This mirrors the paper's setting: the
partition is computed from geometry, its quality judged on the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components as _cc

from repro.util.validation import check_points, check_weights

__all__ = ["GeometricMesh"]


@dataclass
class GeometricMesh:
    """Undirected geometric graph in CSR form.

    Attributes
    ----------
    coords:
        ``(n, d)`` float64 vertex coordinates, d in {2, 3}.
    indptr, indices:
        CSR adjacency of the *symmetric* graph: neighbours of vertex ``v``
        are ``indices[indptr[v]:indptr[v+1]]``.  Every undirected edge
        appears twice.  No self-loops.
    node_weights:
        ``(n,)`` float64; defaults to unit weights.  Climate meshes use
        these to encode the number of vertical levels per column (the
        "2.5-D" workload of the paper).
    name:
        Instance label used by the experiment harness.
    """

    coords: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    node_weights: np.ndarray | None = None
    name: str = ""
    cells: np.ndarray | None = field(default=None, repr=False)  # optional (t, d+1) triangles/tets for viz

    def __post_init__(self) -> None:
        self.coords = check_points(self.coords)
        self.indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        n = self.coords.shape[0]
        if self.indptr.shape != (n + 1,):
            raise ValueError(f"indptr must have shape ({n + 1},), got {self.indptr.shape}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.node_weights = check_weights(self.node_weights, n)

    # -- basic properties ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.coords.shape[0]

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    @property
    def dim(self) -> int:
        return self.coords.shape[1]

    @property
    def total_weight(self) -> float:
        return float(self.node_weights.sum())

    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_array(self) -> np.ndarray:
        """``(m, 2)`` array of undirected edges with ``u < v``."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    # -- construction ----------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        coords: np.ndarray,
        edges: np.ndarray,
        node_weights: np.ndarray | None = None,
        name: str = "",
        cells: np.ndarray | None = None,
    ) -> "GeometricMesh":
        """Build from an ``(m, 2)`` edge list (any orientation, duplicates OK)."""
        coords = check_points(coords)
        n = coords.shape[0]
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (m, 2), got {edges.shape}")
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise ValueError("edge endpoints out of range")
        # drop self loops, dedupe, symmetrise
        edges = edges[edges[:, 0] != edges[:, 1]]
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        keys = lo * n + hi
        _, first = np.unique(keys, return_index=True)
        lo, hi = lo[first], hi[first]
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(coords, indptr, dst, node_weights, name, cells)

    @classmethod
    def from_scipy(
        cls,
        coords: np.ndarray,
        adjacency: sp.spmatrix,
        node_weights: np.ndarray | None = None,
        name: str = "",
    ) -> "GeometricMesh":
        """Build from a scipy sparse adjacency matrix (symmetrised, binarised)."""
        a = sp.csr_matrix(adjacency)
        a = a.maximum(a.T)
        a.setdiag(0)
        a.eliminate_zeros()
        a.sort_indices()
        return cls(coords, a.indptr.astype(np.int64), a.indices.astype(np.int64), node_weights, name)

    def to_scipy(self) -> sp.csr_matrix:
        """Adjacency as a scipy CSR matrix with unit entries."""
        data = np.ones(self.indices.shape[0], dtype=np.float64)
        return sp.csr_matrix((data, self.indices, self.indptr), shape=(self.n, self.n))

    # -- structure -------------------------------------------------------

    def validate(self) -> None:
        """Check symmetry and absence of self loops; raises on violation."""
        src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees())
        if np.any(src == self.indices):
            raise ValueError("mesh contains self loops")
        fwd = set(zip(src.tolist(), self.indices.tolist()))
        for u, v in fwd:
            if (v, u) not in fwd:
                raise ValueError(f"adjacency not symmetric: edge ({u}, {v}) has no reverse")

    def connected_components(self) -> tuple[int, np.ndarray]:
        return _cc(self.to_scipy(), directed=False)

    def is_connected(self) -> bool:
        ncomp, _ = self.connected_components()
        return ncomp <= 1

    def largest_component(self) -> "GeometricMesh":
        """Restrict to the largest connected component (relabelled)."""
        ncomp, labels = self.connected_components()
        if ncomp <= 1:
            return self
        keep = labels == np.argmax(np.bincount(labels))
        return self.subgraph(keep)

    def subgraph(self, mask: np.ndarray) -> "GeometricMesh":
        """Induced subgraph on ``mask`` (bool array), vertices relabelled."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ValueError(f"mask must have shape ({self.n},)")
        new_id = np.full(self.n, -1, dtype=np.int64)
        new_id[mask] = np.arange(int(mask.sum()))
        edges = self.edge_array()
        keep = mask[edges[:, 0]] & mask[edges[:, 1]]
        new_edges = new_id[edges[keep]]
        return GeometricMesh.from_edges(
            self.coords[mask],
            new_edges,
            self.node_weights[mask],
            name=self.name,
        )

    # -- persistence -----------------------------------------------------

    def save_npz(self, path: str) -> None:
        np.savez_compressed(
            path,
            coords=self.coords,
            indptr=self.indptr,
            indices=self.indices,
            node_weights=self.node_weights,
            name=np.asarray(self.name),
        )

    @classmethod
    def load_npz(cls, path: str) -> "GeometricMesh":
        data = np.load(path, allow_pickle=False)
        return cls(
            coords=data["coords"],
            indptr=data["indptr"],
            indices=data["indices"],
            node_weights=data["node_weights"],
            name=str(data["name"]),
        )

    def __repr__(self) -> str:
        w = "" if np.all(self.node_weights == 1.0) else ", weighted"
        return f"GeometricMesh(name={self.name!r}, n={self.n}, m={self.m}, dim={self.dim}{w})"
