"""Internal helpers for density-controlled point sampling.

The DIMACS "huge*" meshes are adaptively refined: vertex density is much
higher near simulation features (fronts, traces, bubble boundaries).  We
reproduce that by rejection-sampling points with a spatially varying density
and Delaunay-triangulating the result.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["rejection_sample", "dist_to_segments", "min_dist_to_segments"]


def rejection_sample(
    n: int,
    dim: int,
    density: Callable[[np.ndarray], np.ndarray],
    rng: int | np.random.Generator | None = None,
    lo: np.ndarray | float = 0.0,
    hi: np.ndarray | float = 1.0,
    max_rounds: int = 200,
) -> np.ndarray:
    """Sample ``n`` points in the box ``[lo, hi]^dim`` with density ``density``.

    ``density`` maps an ``(m, dim)`` array to non-negative relative densities
    (need not be normalised).  Rejection sampling against the running maximum;
    raises if acceptance stays pathologically low.
    """
    gen = ensure_rng(rng)
    lo = np.broadcast_to(np.asarray(lo, dtype=np.float64), (dim,))
    hi = np.broadcast_to(np.asarray(hi, dtype=np.float64), (dim,))
    out = np.empty((n, dim), dtype=np.float64)
    got = 0
    # Estimate the density ceiling from a pilot batch, then refine on the fly.
    pilot = lo + (hi - lo) * gen.random((2048, dim))
    ceiling = float(np.max(density(pilot))) * 1.1 + 1e-12
    for _ in range(max_rounds):
        if got >= n:
            break
        batch = max(4 * (n - got), 4096)
        cand = lo + (hi - lo) * gen.random((batch, dim))
        dens = np.asarray(density(cand), dtype=np.float64)
        if np.any(dens < 0):
            raise ValueError("density returned negative values")
        peak = float(dens.max(initial=0.0))
        if peak > ceiling:
            ceiling = peak * 1.1
        accept = gen.random(batch) * ceiling < dens
        take = cand[accept][: n - got]
        out[got : got + take.shape[0]] = take
        got += take.shape[0]
    if got < n:
        raise RuntimeError(f"rejection sampling stalled: {got}/{n} points after {max_rounds} rounds")
    return out


def dist_to_segments(points: np.ndarray, seg_a: np.ndarray, seg_b: np.ndarray) -> np.ndarray:
    """Euclidean distance from each point to each segment; shape ``(n, s)``.

    ``seg_a``/``seg_b`` are ``(s, d)`` segment endpoints.
    """
    p = np.asarray(points, dtype=np.float64)[:, None, :]  # (n, 1, d)
    a = np.asarray(seg_a, dtype=np.float64)[None, :, :]  # (1, s, d)
    b = np.asarray(seg_b, dtype=np.float64)[None, :, :]
    ab = b - a
    denom = np.einsum("nsd,nsd->ns", ab, ab)
    denom = np.where(denom == 0.0, 1.0, denom)
    t = np.einsum("nsd,nsd->ns", p - a, ab) / denom
    np.clip(t, 0.0, 1.0, out=t)
    closest = a + t[..., None] * ab
    diff = p - closest
    return np.sqrt(np.einsum("nsd,nsd->ns", diff, diff))


def min_dist_to_segments(points: np.ndarray, seg_a: np.ndarray, seg_b: np.ndarray) -> np.ndarray:
    """Distance from each point to the nearest of the given segments."""
    return dist_to_segments(points, seg_a, seg_b).min(axis=1)
