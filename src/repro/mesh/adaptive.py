"""Adaptively refined 2-D triangle meshes (DIMACS ``huge*`` lookalikes).

The hugetric / hugetrace / hugebubbles benchmark meshes (Marquardt &
Schamberger generator) model adaptive numerical simulations: triangle size
varies by orders of magnitude across the domain, following a refinement
feature.  These generators reproduce the three feature types:

- ``hugetric_like``  — refinement around a circular front,
- ``hugetrace_like`` — refinement along a wandering trace (random-walk path),
- ``hugebubbles_like`` — bubbles (holes) with refined boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.mesh._sampling import min_dist_to_segments, rejection_sample
from repro.mesh.delaunay import delaunay_edges
from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["hugetric_like", "hugetrace_like", "hugebubbles_like", "refinement_sequence"]

# Refinement contrast: density at the feature relative to the background.
_REFINE = 30.0
_SIGMA = 0.04


def _front_density(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    d = np.abs(np.linalg.norm(points - center, axis=1) - radius)
    return 1.0 + _REFINE * np.exp(-((d / _SIGMA) ** 2))


def hugetric_like(
    n: int, rng: int | np.random.Generator | None = None, name: str = "hugetric-like"
) -> GeometricMesh:
    """Triangle mesh refined around a circular front (hugetric family)."""
    gen = ensure_rng(rng)
    center = np.array([0.5, 0.5])
    radius = 0.3
    pts = rejection_sample(int(n), 2, lambda p: _front_density(p, center, radius), gen)
    edges, cells = delaunay_edges(pts)
    return GeometricMesh.from_edges(pts, edges, name=name, cells=cells)


def refinement_sequence(
    n: int,
    steps: int = 5,
    rng: int | np.random.Generator | None = None,
    radii: tuple[float, float] = (0.2, 0.3),
    contrast: float = 8.0,
    name: str = "adaptive-front",
) -> list[GeometricMesh]:
    """A repartitioning workload: one mesh, a refinement front that moves.

    Models the time loop of an adaptive simulation the way AMR load balancers
    see it: the mesh connectivity is fixed, but the local work (node weights)
    follows a feature — here a circular front whose radius grows from
    ``radii[0]`` to ``radii[1]`` over the steps.  All returned meshes share
    coordinates and adjacency; only ``node_weights`` differ, so successive
    partitions are directly comparable and migration volume between them is
    well defined.

    ``contrast`` is the weight of a node on the front relative to the
    background.  It defaults below the meshes' ``_REFINE`` because the
    workload must stay *balanceable*: at 30x a single node can exceed an
    epsilon-share of a block's target and no partitioner can meet the
    tolerance.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    gen = ensure_rng(rng)
    center = np.array([0.5, 0.5])
    radii = np.linspace(radii[0], radii[1], steps)

    def density(points: np.ndarray, radius: float) -> np.ndarray:
        d = np.abs(np.linalg.norm(points - center, axis=1) - radius)
        return 1.0 + contrast * np.exp(-((d / _SIGMA) ** 2))

    # sample against the mid-sequence density so every step has resolution
    # near its front without remeshing
    pts = rejection_sample(int(n), 2, lambda p: density(p, float(radii[steps // 2])), gen)
    edges, cells = delaunay_edges(pts)
    base = GeometricMesh.from_edges(pts, edges, name=name, cells=cells)
    meshes = []
    for step, radius in enumerate(radii):
        meshes.append(
            GeometricMesh(
                coords=base.coords,
                indptr=base.indptr,
                indices=base.indices,
                node_weights=density(pts, float(radius)),
                name=f"{name}[{step}]",
                cells=base.cells,
            )
        )
    return meshes


def _random_trace(gen: np.random.Generator, steps: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """A bounded random-walk polyline across the unit square."""
    pos = np.empty((steps + 1, 2))
    pos[0] = (0.05, gen.uniform(0.2, 0.8))
    heading = 0.0
    step = 0.95 / steps
    for i in range(steps):
        heading = 0.7 * heading + gen.normal(0.0, 0.8)
        direction = np.array([1.0, np.tanh(heading)])
        direction /= np.linalg.norm(direction)
        pos[i + 1] = np.clip(pos[i] + step * direction * np.array([1.0, 2.0]), 0.02, 0.98)
        pos[i + 1, 0] = pos[i, 0] + step  # strictly advancing in x
    return pos[:-1], pos[1:]


def hugetrace_like(
    n: int, rng: int | np.random.Generator | None = None, name: str = "hugetrace-like"
) -> GeometricMesh:
    """Triangle mesh refined along a wandering trace (hugetrace family)."""
    gen = ensure_rng(rng)
    seg_a, seg_b = _random_trace(gen)

    def density(p: np.ndarray) -> np.ndarray:
        d = min_dist_to_segments(p, seg_a, seg_b)
        return 1.0 + _REFINE * np.exp(-((d / _SIGMA) ** 2))

    pts = rejection_sample(int(n), 2, density, gen)
    edges, cells = delaunay_edges(pts)
    return GeometricMesh.from_edges(pts, edges, name=name, cells=cells)


def hugebubbles_like(
    n: int,
    n_bubbles: int = 4,
    rng: int | np.random.Generator | None = None,
    name: str = "hugebubbles-like",
) -> GeometricMesh:
    """Triangle mesh with circular holes and refined hole boundaries.

    Bubbles are removed from the domain entirely (triangles whose centroid
    falls inside a bubble are dropped), producing the multiply connected
    topology of the hugebubbles instances.
    """
    gen = ensure_rng(rng)
    centers = gen.uniform(0.2, 0.8, size=(int(n_bubbles), 2))
    radii = gen.uniform(0.06, 0.13, size=int(n_bubbles))

    def signed_bubble_dist(p: np.ndarray) -> np.ndarray:
        # positive outside all bubbles; negative inside the nearest one
        d = np.linalg.norm(p[:, None, :] - centers[None, :, :], axis=2) - radii[None, :]
        return d.min(axis=1)

    def density(p: np.ndarray) -> np.ndarray:
        d = signed_bubble_dist(p)
        dens = 1.0 + _REFINE * np.exp(-((np.abs(d) / _SIGMA) ** 2))
        dens[d < 0] = 0.0  # nothing inside a bubble
        return dens

    pts = rejection_sample(int(n), 2, density, gen)
    edges, cells = delaunay_edges(pts)
    centroids = pts[cells].mean(axis=1)
    keep_cells = cells[signed_bubble_dist(centroids) > 0.0]
    # rebuild edges from surviving triangles only, so holes are real holes
    kept_edges = np.concatenate(
        [keep_cells[:, [0, 1]], keep_cells[:, [1, 2]], keep_cells[:, [0, 2]]], axis=0
    )
    mesh = GeometricMesh.from_edges(pts, kept_edges, name=name, cells=keep_cells)
    return mesh.largest_component()
