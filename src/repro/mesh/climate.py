"""2.5-D climate-simulation meshes (FESOM lookalikes).

The paper's climate instances come from the FESOM2 ocean model: a 2-D
unstructured surface mesh over the ocean, where each surface vertex carries a
*node weight* equal to its number of vertical levels (the "2.5-D" setting of
the introduction — computational load follows the 3-D column height, but
partitioning happens in 2-D).

This generator reproduces those properties synthetically:

- a land mask from a smooth random field (sum of Gaussian bumps) carves an
  irregular coastline and removes land entirely (oceans are not simply
  connected);
- node weights grow with distance from the coast, emulating bathymetry
  (1 .. ``max_levels`` vertical levels, default 47 as in FESOM setups).
"""

from __future__ import annotations

import numpy as np

from repro.mesh._sampling import rejection_sample
from repro.mesh.delaunay import delaunay_edges
from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["climate_mesh"]


def _random_field(gen: np.random.Generator, n_bumps: int = 12):
    """A smooth scalar field on [0,2]x[0,1]: sum of random Gaussian bumps."""
    centers = gen.uniform((0.0, 0.0), (2.0, 1.0), size=(n_bumps, 2))
    widths = gen.uniform(0.1, 0.35, size=n_bumps)
    signs = gen.choice([-1.0, 1.0], size=n_bumps)

    def field(p: np.ndarray) -> np.ndarray:
        d2 = ((p[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return (signs[None, :] * np.exp(-d2 / widths[None, :] ** 2)).sum(axis=1)

    return field


def climate_mesh(
    n: int,
    max_levels: int = 47,
    land_fraction: float = 0.35,
    rng: int | np.random.Generator | None = None,
    name: str = "fesom-like",
) -> GeometricMesh:
    """Ocean mesh with column-depth node weights.

    Parameters
    ----------
    n:
        Target number of ocean vertices (approximate: land triangles are
        dropped after triangulation and the largest component kept).
    max_levels:
        Maximum number of vertical levels; node weights lie in [1, max_levels].
    land_fraction:
        Approximate fraction of the rectangle covered by land.
    """
    if not (0.0 <= land_fraction < 0.9):
        raise ValueError(f"land_fraction must be in [0, 0.9), got {land_fraction}")
    gen = ensure_rng(rng)
    field = _random_field(gen)

    # calibrate the land threshold on a probe grid
    probe = np.column_stack(
        [g.ravel() for g in np.meshgrid(np.linspace(0, 2, 96), np.linspace(0, 1, 48), indexing="ij")]
    )
    threshold = float(np.quantile(field(probe), 1.0 - land_fraction))

    def ocean_depth(p: np.ndarray) -> np.ndarray:
        """Positive depth proxy on ocean, zero on land."""
        return np.maximum(threshold - field(p), 0.0)

    def density(p: np.ndarray) -> np.ndarray:
        # slightly higher resolution near the coast, as ocean models use
        d = ocean_depth(p)
        coast = np.exp(-((d / 0.05) ** 2))
        dens = 1.0 + 3.0 * coast
        dens[d <= 0] = 0.0
        return dens

    pts = rejection_sample(int(n), 2, density, gen, lo=np.array([0.0, 0.0]), hi=np.array([2.0, 1.0]))
    edges, cells = delaunay_edges(pts)
    centroids = pts[cells].mean(axis=1)
    keep_cells = cells[ocean_depth(centroids) > 0.0]
    kept_edges = np.concatenate(
        [keep_cells[:, [0, 1]], keep_cells[:, [1, 2]], keep_cells[:, [0, 2]]], axis=0
    )
    depth = ocean_depth(pts)
    scale = depth / max(float(depth.max()), 1e-12)
    levels = np.maximum(1.0, np.ceil(scale * max_levels))
    mesh = GeometricMesh.from_edges(pts, kept_edges, node_weights=levels, name=name, cells=keep_cells)
    return mesh.largest_component()
