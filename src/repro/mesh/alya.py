"""3-D branching-tube meshes (Alya respiratory-system lookalikes).

The PRACE ``alyaTestCase`` meshes discretise the human respiratory system:
elongated branching airways.  The geometry matters for the evaluation because
axis-aligned cutters (RCB/MJ) fragment tubes that run diagonally, whereas
k-means follows them.  We build a binary-tree airway skeleton, sample points
inside tubes of decreasing radius around each segment, and tetrahedralise
with 3-D Delaunay (dropping cells that leave the tubes).
"""

from __future__ import annotations

import numpy as np

from repro.mesh._sampling import dist_to_segments
from repro.mesh.delaunay import delaunay_edges
from repro.mesh.graph import GeometricMesh
from repro.util.rng import ensure_rng

__all__ = ["airway_mesh"]


def _build_skeleton(levels: int, gen: np.random.Generator):
    """Binary branching skeleton: list of (a, b, radius) per segment."""
    seg_a, seg_b, radii = [], [], []
    # trunk points straight down
    start = np.array([0.5, 0.5, 1.0])
    direction = np.array([0.0, 0.0, -1.0])
    frontier = [(start, direction, 0.30, 0.09)]  # (origin, dir, length, radius)
    for level in range(levels + 1):
        next_frontier = []
        for origin, d, length, radius in frontier:
            end = origin + d * length
            seg_a.append(origin)
            seg_b.append(end)
            radii.append(radius)
            if level < levels:
                for sign in (-1.0, 1.0):
                    angle = gen.uniform(0.45, 0.75)
                    azimuth = gen.uniform(0.0, 2 * np.pi)
                    # rotate `d` by `angle` towards a random perpendicular
                    perp = np.cross(d, np.array([np.cos(azimuth), np.sin(azimuth), 0.12 * sign]))
                    norm = np.linalg.norm(perp)
                    perp = perp / norm if norm > 1e-9 else np.array([1.0, 0.0, 0.0])
                    child = np.cos(angle) * d + np.sin(angle) * sign * perp
                    child /= np.linalg.norm(child)
                    next_frontier.append((end, child, length * 0.75, radius * 0.7))
        frontier = next_frontier
    return np.array(seg_a), np.array(seg_b), np.array(radii)


def airway_mesh(
    n: int,
    levels: int = 2,
    rng: int | np.random.Generator | None = None,
    name: str = "alya-like",
) -> GeometricMesh:
    """Tetrahedral-style mesh of a branching airway tree.

    Parameters
    ----------
    n:
        Target number of vertices (approximate after filtering).
    levels:
        Branching depth; ``levels=2`` gives 7 tube segments.
    """
    if levels < 0:
        raise ValueError(f"levels must be >= 0, got {levels}")
    gen = ensure_rng(rng)
    seg_a, seg_b, radii = _build_skeleton(int(levels), gen)
    n_seg = seg_a.shape[0]
    lengths = np.linalg.norm(seg_b - seg_a, axis=1)
    # sample per-segment proportional to tube volume ~ length * r^2
    volume = lengths * radii**2
    counts = np.maximum(1, (volume / volume.sum() * int(n)).astype(np.int64))

    pieces = []
    for s in range(n_seg):
        c = int(counts[s])
        t = gen.random(c)
        axis_pts = seg_a[s] + t[:, None] * (seg_b[s] - seg_a[s])
        # uniform in a ball of the tube radius, then added to the axis point;
        # this "sausage" sampling slightly rounds the joints, which is fine
        offsets = gen.normal(size=(c, 3))
        offsets /= np.linalg.norm(offsets, axis=1, keepdims=True)
        r = radii[s] * gen.random(c) ** (1.0 / 3.0)
        pieces.append(axis_pts + offsets * r[:, None])
    pts = np.concatenate(pieces, axis=0)

    edges, cells = delaunay_edges(pts)
    centroids = pts[cells].mean(axis=1)
    d = dist_to_segments(centroids, seg_a, seg_b)
    inside = (d <= radii[None, :] * 1.15).any(axis=1)
    keep_cells = cells[inside]
    pair_idx = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    kept_edges = np.concatenate([keep_cells[:, list(p)] for p in pair_idx], axis=0)
    mesh = GeometricMesh.from_edges(pts, kept_edges, name=name, cells=keep_cells)
    return mesh.largest_component()
