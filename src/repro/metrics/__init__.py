"""Partition-quality metrics (paper §2 and §5.2.4).

Graph metrics take a :class:`~repro.mesh.graph.GeometricMesh` plus an
assignment vector; migration metrics compare two assignments of the same
point set.  All are fully vectorised.
"""

from repro.metrics.imbalance import block_weights, imbalance, max_block_weight
from repro.metrics.cut import edge_cut, external_edges
from repro.metrics.commvolume import comm_volumes, max_comm_volume, total_comm_volume
from repro.metrics.diameter import block_diameters, harmonic_mean_diameter, ifub_lower_bound
from repro.metrics.migration import (
    migration_fraction,
    migration_matrix,
    migration_volume,
    relabel_for_stability,
)
from repro.metrics.report import (
    MetricRow,
    aggregate_ratios,
    evaluate_partition,
    geometric_mean,
    harmonic_mean,
)

__all__ = [
    "block_weights",
    "imbalance",
    "max_block_weight",
    "edge_cut",
    "external_edges",
    "comm_volumes",
    "max_comm_volume",
    "total_comm_volume",
    "block_diameters",
    "ifub_lower_bound",
    "harmonic_mean_diameter",
    "migration_matrix",
    "migration_volume",
    "migration_fraction",
    "relabel_for_stability",
    "MetricRow",
    "evaluate_partition",
    "geometric_mean",
    "harmonic_mean",
    "aggregate_ratios",
]
