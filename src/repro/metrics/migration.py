"""Migration metrics between successive partitions (repartitioning quality).

When an adaptive simulation repartitions, every point whose block changes
must be migrated to another process; the migrated weight — not just the new
partition's cut — determines the cost of adopting the new partition (Buluç
et al., *Recent Advances in Graph Partitioning*, treat migration volume as a
first-class repartitioning objective).  These metrics compare two
assignments of the *same* point set; both plain arrays and
:class:`~repro.partitioners.result.PartitionResult` objects are accepted.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_weights

__all__ = [
    "migration_matrix",
    "migration_volume",
    "migration_fraction",
    "relabel_for_stability",
]


def _labels(assignment) -> np.ndarray:
    a = np.ascontiguousarray(assignment)
    if a.ndim != 1:
        raise ValueError(f"assignment must be 1-D, got shape {a.shape}")
    if not np.issubdtype(a.dtype, np.integer):
        raise TypeError(f"assignment must be integral, got dtype {a.dtype}")
    return a.astype(np.int64, copy=False)


def _pair(previous, current) -> tuple[np.ndarray, np.ndarray]:
    prev, cur = _labels(previous), _labels(current)
    if prev.shape != cur.shape:
        raise ValueError(
            f"partitions cover different point sets: {prev.shape} vs {cur.shape}; "
            "migration is only defined over a common point set"
        )
    return prev, cur


def migration_matrix(
    previous, current, k_prev: int | None = None, k_cur: int | None = None,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weight flow between old and new blocks: ``M[i, j]`` is the weight of
    points moving from old block ``i`` to new block ``j``.

    The diagonal is the weight that stays put; everything off-diagonal must
    migrate.
    """
    prev, cur = _pair(previous, current)
    w = check_weights(weights, prev.shape[0])
    kp = int(k_prev) if k_prev is not None else int(prev.max()) + 1
    kc = int(k_cur) if k_cur is not None else int(cur.max()) + 1
    if prev.min() < 0 or prev.max() >= kp or cur.min() < 0 or cur.max() >= kc:
        raise ValueError("assignment values out of range for the given block counts")
    flat = prev * kc + cur
    return np.bincount(flat, weights=w, minlength=kp * kc).reshape(kp, kc)


def migration_volume(previous, current, weights: np.ndarray | None = None) -> float:
    """Total weight of points whose block id changes between the partitions."""
    prev, cur = _pair(previous, current)
    w = check_weights(weights, prev.shape[0])
    return float(w[prev != cur].sum())


def migration_fraction(previous, current, weights: np.ndarray | None = None) -> float:
    """Migrated share of the total weight, in ``[0, 1]``."""
    prev, cur = _pair(previous, current)
    w = check_weights(weights, prev.shape[0])
    return float(w[prev != cur].sum() / w.sum())


def relabel_for_stability(
    previous, current, k: int | None = None, weights: np.ndarray | None = None
) -> np.ndarray:
    """Renumber ``current``'s blocks to minimise migration against ``previous``.

    A cold repartitioning run may find essentially the same blocks under
    permuted ids, which would charge the full point set as migrated.  This
    greedily matches new blocks to old ones by descending overlap weight (a
    near-optimal linear-assignment heuristic that needs no LP) and returns
    the relabelled assignment.  Block counts must agree.
    """
    prev, cur = _pair(previous, current)
    kk = int(k) if k is not None else int(max(prev.max(), cur.max())) + 1
    overlap = migration_matrix(prev, cur, kk, kk, weights)
    order = np.argsort(overlap, axis=None)[::-1]
    old_taken = np.zeros(kk, dtype=bool)
    new_taken = np.zeros(kk, dtype=bool)
    mapping = np.full(kk, -1, dtype=np.int64)  # new id -> old id
    matched = 0
    for flat in order:
        if matched == kk:
            break
        i, j = divmod(int(flat), kk)
        if old_taken[i] or new_taken[j]:
            continue
        mapping[j] = i
        old_taken[i] = True
        new_taken[j] = True
        matched += 1
    # any unmatched new blocks (zero overlap everywhere) take the leftovers
    leftovers = iter(np.flatnonzero(~old_taken))
    for j in np.flatnonzero(mapping < 0):
        mapping[j] = next(leftovers)
    return mapping[cur]
