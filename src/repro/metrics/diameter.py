"""Block-diameter metrics via the iFUB lower bound (paper §5.2.4).

Computing exact graph diameters is quadratic, so the paper runs "the first 3
rounds of the iFUB algorithm by Crescenzi et al." and reports the resulting
lower bound.  We implement the same scheme: a double sweep (BFS from a seed,
then BFS from the farthest vertex found) plus one further round from the new
farthest vertex; the maximum eccentricity observed is a valid lower bound and
in practice usually tight on mesh-like graphs.

Disconnected blocks have infinite diameter; following the paper, the
per-graph figure aggregates block diameters with the *harmonic* mean so a few
infinities do not blow up the summary (1/inf -> 0).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment

__all__ = ["bfs_distances", "ifub_lower_bound", "block_diameters", "harmonic_mean_diameter"]


def bfs_distances(indptr: np.ndarray, indices: np.ndarray, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get -1.

    Frontier-expansion BFS where each level is processed with numpy array
    operations, so the Python-level loop runs once per BFS level.
    """
    n = indptr.shape[0] - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        # gather all neighbours of the frontier
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        if counts.sum() == 0:
            break
        gather = np.concatenate([indices[s:e] for s, e in zip(starts, ends)])
        cand = gather[dist[gather] < 0]
        if cand.size == 0:
            break
        frontier = np.unique(cand)
        dist[frontier] = level
    return dist


def ifub_lower_bound(indptr: np.ndarray, indices: np.ndarray, rounds: int = 3, seed: int = 0) -> float:
    """Diameter lower bound from ``rounds`` BFS sweeps (iFUB-style).

    Returns ``inf`` for disconnected graphs and 0 for single vertices.
    """
    n = indptr.shape[0] - 1
    if n == 0:
        raise ValueError("empty graph")
    if n == 1:
        return 0.0
    source = int(seed) % n
    best = 0
    for _ in range(max(1, rounds)):
        dist = bfs_distances(indptr, indices, source)
        if np.any(dist < 0):
            return float("inf")
        ecc = int(dist.max())
        best = max(best, ecc)
        farthest = int(np.argmax(dist))
        if farthest == source:
            break
        source = farthest
    return float(best)


def _block_csr(mesh: GeometricMesh, members: np.ndarray, assignment: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR of the subgraph induced on ``members`` (relabelled 0..len-1)."""
    local_id = np.full(mesh.n, -1, dtype=np.int64)
    local_id[members] = np.arange(members.shape[0])
    block = assignment[members[0]]
    starts = mesh.indptr[members]
    ends = mesh.indptr[members + 1]
    degs = ends - starts
    nbrs = np.concatenate([mesh.indices[s:e] for s, e in zip(starts, ends)]) if members.size else np.empty(0, np.int64)
    src = np.repeat(np.arange(members.shape[0]), degs)
    keep = assignment[nbrs] == block
    src, dst = src[keep], local_id[nbrs[keep]]
    indptr = np.zeros(members.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=members.shape[0]), out=indptr[1:])
    order = np.argsort(src, kind="stable")
    return indptr, dst[order]


def block_diameters(mesh: GeometricMesh, assignment: np.ndarray, k: int, rounds: int = 3) -> np.ndarray:
    """iFUB diameter lower bound for every block, shape ``(k,)``.

    Empty blocks get diameter 0; disconnected blocks ``inf``.
    """
    a = check_assignment(assignment, mesh.n, k)
    order = np.argsort(a, kind="stable")
    sorted_blocks = a[order]
    boundaries = np.searchsorted(sorted_blocks, np.arange(k + 1))
    out = np.zeros(k, dtype=np.float64)
    for b in range(k):
        members = order[boundaries[b] : boundaries[b + 1]]
        if members.size == 0:
            continue
        if members.size == 1:
            out[b] = 0.0
            continue
        indptr, indices = _block_csr(mesh, members, a)
        out[b] = ifub_lower_bound(indptr, indices, rounds=rounds)
    return out


def harmonic_mean_diameter(mesh: GeometricMesh, assignment: np.ndarray, k: int, rounds: int = 3) -> float:
    """Harmonic mean of block diameters (the paper's ``harmDiam``).

    Blocks with diameter 0 (singletons) are excluded to keep the mean
    defined; infinite diameters contribute 0 to the reciprocal sum.
    """
    diams = block_diameters(mesh, assignment, k, rounds=rounds)
    positive = diams[diams > 0]
    if positive.size == 0:
        return 0.0
    recip = np.where(np.isinf(positive), 0.0, 1.0 / positive)
    if recip.sum() == 0.0:
        return float("inf")
    return float(positive.size / recip.sum())
