"""Load-balance metrics.

The balance constraint (paper §2): every block's weight must be at most
``(1 + epsilon) * ceil(W / k)`` where ``W`` is the total vertex weight.
``imbalance`` returns the smallest epsilon for which a partition is feasible.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_assignment, check_weights

__all__ = ["block_weights", "max_block_weight", "imbalance", "is_balanced"]


def block_weights(assignment: np.ndarray, k: int, weights: np.ndarray | None = None) -> np.ndarray:
    """Total vertex weight per block, shape ``(k,)``."""
    a = check_assignment(assignment, len(assignment), k)
    w = check_weights(weights, len(a))
    return np.bincount(a, weights=w, minlength=k)


def max_block_weight(assignment: np.ndarray, k: int, weights: np.ndarray | None = None) -> float:
    return float(block_weights(assignment, k, weights).max())


def imbalance(assignment: np.ndarray, k: int, weights: np.ndarray | None = None) -> float:
    """Smallest epsilon such that ``max_block <= (1 + eps) * ceil(W / k)``.

    For unit weights this matches the paper's ``Lmax = (1+eps) * ceil(n/k)``;
    for general weights the ceiling is taken on the ideal share ``W / k``
    (the usual weighted extension [Hendrickson & Leland 1995]).
    """
    bw = block_weights(assignment, k, weights)
    w = check_weights(weights, len(assignment))
    ideal = np.ceil(w.sum() / k)
    if ideal <= 0:
        return 0.0
    return float(bw.max() / ideal - 1.0)


def is_balanced(
    assignment: np.ndarray, k: int, epsilon: float, weights: np.ndarray | None = None
) -> bool:
    """Feasibility check against the balance constraint."""
    return imbalance(assignment, k, weights) <= epsilon + 1e-12
