"""Metric rows and the Figure-2 aggregation machinery.

Figure 2 of the paper reports, per instance class and per tool, the
*geometric mean* over graphs of the tool's metric value divided by
Geographer's value (harmonic mean across blocks is already folded into the
diameter metric itself).  :func:`aggregate_ratios` reproduces exactly that
reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.metrics.commvolume import comm_volumes
from repro.metrics.cut import edge_cut
from repro.metrics.diameter import harmonic_mean_diameter
from repro.metrics.imbalance import imbalance

__all__ = ["MetricRow", "evaluate_partition", "geometric_mean", "harmonic_mean", "aggregate_ratios"]

#: Metrics reported in Figure 2, in the paper's order.
FIGURE2_METRICS = ("edgeCut", "maxCommVol", "totCommVol", "harmDiam", "timeComm")


@dataclass
class MetricRow:
    """All quality numbers for one (graph, tool, k) run — one row of Table 1/2."""

    graph: str
    tool: str
    k: int
    n: int
    time: float = 0.0
    cut: float = 0.0
    max_comm_vol: float = 0.0
    total_comm_vol: float = 0.0
    harm_diameter: float = 0.0
    time_spmv_comm: float = 0.0
    imbalance: float = 0.0
    extras: dict = field(default_factory=dict)

    def metric(self, name: str) -> float:
        """Access a Figure-2 metric by its paper label."""
        mapping = {
            "edgeCut": self.cut,
            "maxCommVol": self.max_comm_vol,
            "totCommVol": self.total_comm_vol,
            "harmDiam": self.harm_diameter,
            "timeComm": self.time_spmv_comm,
            "time": self.time,
            "imbalance": self.imbalance,
        }
        if name not in mapping:
            raise KeyError(f"unknown metric {name!r}; available: {sorted(mapping)}")
        return float(mapping[name])


def evaluate_partition(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    tool: str = "",
    time: float = 0.0,
    diameter_rounds: int = 3,
    with_spmv: bool = True,
) -> MetricRow:
    """Compute every Table-1/2 metric for one partition."""
    volumes = comm_volumes(mesh, assignment, k)
    row = MetricRow(
        graph=mesh.name,
        tool=tool,
        k=k,
        n=mesh.n,
        time=time,
        cut=edge_cut(mesh, assignment, k),
        max_comm_vol=float(volumes.max()),
        total_comm_vol=float(volumes.sum()),
        harm_diameter=harmonic_mean_diameter(mesh, assignment, k, rounds=diameter_rounds),
        imbalance=imbalance(assignment, k, mesh.node_weights),
    )
    if with_spmv:
        from repro.spmv.distspmv import spmv_comm_time  # lazy: spmv depends on metrics

        row.time_spmv_comm = spmv_comm_time(mesh, assignment, k)
    return row


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean; requires strictly positive finite inputs."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("geometric mean of empty input")
    if np.any(~np.isfinite(v)) or np.any(v <= 0):
        raise ValueError("geometric mean requires positive finite values")
    return float(np.exp(np.mean(np.log(v))))


def harmonic_mean(values: np.ndarray) -> float:
    """Harmonic mean; infinities contribute zero to the reciprocal sum."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("harmonic mean of empty input")
    if np.any(v <= 0):
        raise ValueError("harmonic mean requires positive values")
    recip = np.where(np.isinf(v), 0.0, 1.0 / v)
    if recip.sum() == 0.0:
        return float("inf")
    return float(v.size / recip.sum())


def aggregate_ratios(
    rows: list[MetricRow],
    baseline_tool: str = "Geographer",
    metrics: tuple[str, ...] = FIGURE2_METRICS,
) -> dict[str, dict[str, float]]:
    """Figure-2 reduction: per tool, geometric mean over graphs of metric ratios.

    ``result[tool][metric]`` is the geometric mean over all graphs of
    ``metric(tool on graph) / metric(baseline on graph)``.  Graphs where the
    baseline value is zero or non-finite are skipped for that metric.
    """
    by_graph: dict[str, dict[str, MetricRow]] = {}
    for row in rows:
        by_graph.setdefault(row.graph, {})[row.tool] = row
    tools = sorted({row.tool for row in rows})
    if baseline_tool not in tools:
        raise ValueError(f"baseline tool {baseline_tool!r} absent from rows (have {tools})")

    out: dict[str, dict[str, float]] = {tool: {} for tool in tools}
    for metric in metrics:
        ratios: dict[str, list[float]] = {tool: [] for tool in tools}
        for graph_rows in by_graph.values():
            base_row = graph_rows.get(baseline_tool)
            if base_row is None:
                continue
            base = base_row.metric(metric)
            if not np.isfinite(base) or base <= 0:
                continue
            for tool, row in graph_rows.items():
                value = row.metric(metric)
                if np.isfinite(value) and value > 0:
                    ratios[tool].append(value / base)
        for tool in tools:
            if ratios[tool]:
                out[tool][metric] = geometric_mean(np.asarray(ratios[tool]))
    return out
