"""Block-shape metrics.

The paper's motivation (§1, §3.2): good block shapes — compact, connected,
bounded aspect ratio — correlate with partition quality and application
efficiency.  Figure 1's qualitative comparison (strips vs rectangles vs
curved compact blocks) becomes quantitative here.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment

__all__ = ["block_aspect_ratios", "block_compactness", "disconnected_blocks", "shape_report"]


def block_aspect_ratios(points: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Bounding-box aspect ratio (longest/shortest side) per block.

    1 is a perfect square/cube; RCB strips score high, k-means blobs low.
    Empty and single-point blocks get ratio 1.
    """
    a = check_assignment(assignment, len(points), k)
    out = np.ones(k)
    for b in range(k):
        members = points[a == b]
        if members.shape[0] < 2:
            continue
        extent = members.max(axis=0) - members.min(axis=0)
        shortest = max(extent.min(), 1e-12)
        out[b] = extent.max() / shortest
    return out


def block_compactness(points: np.ndarray, assignment: np.ndarray, k: int) -> np.ndarray:
    """Radius compactness per block: rms radius / ideal-ball rms radius.

    For a block of n points in dimension d, the ideal shape is a ball with
    the same point count under uniform global density; the reported value is
    the ratio of the block's rms distance-to-centroid to that ball's.  1 is
    ideal; elongated or fragmented blocks score higher.
    """
    pts = np.asarray(points, dtype=np.float64)
    a = check_assignment(assignment, len(pts), k)
    n, d = pts.shape
    domain_extent = pts.max(axis=0) - pts.min(axis=0)
    domain_volume = float(np.prod(np.maximum(domain_extent, 1e-12)))
    out = np.ones(k)
    # rms radius of a uniform d-ball of radius R: R * sqrt(d / (d + 2))
    unit_ball_volume = np.pi if d == 2 else 4.0 * np.pi / 3.0
    for b in range(k):
        members = pts[a == b]
        if members.shape[0] < 2:
            continue
        centroid = members.mean(axis=0)
        rms = float(np.sqrt(np.mean(np.sum((members - centroid) ** 2, axis=1))))
        share_volume = domain_volume * members.shape[0] / n
        ideal_radius = (share_volume / unit_ball_volume) ** (1.0 / d)
        ideal_rms = ideal_radius * np.sqrt(d / (d + 2.0))
        out[b] = rms / max(ideal_rms, 1e-12)
    return out


def disconnected_blocks(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> int:
    """Number of blocks that induce a disconnected subgraph.

    The paper notes some tools produce disconnected blocks (infinite
    diameter); this counts them directly.
    """
    from repro.metrics.diameter import block_diameters

    diams = block_diameters(mesh, assignment, k, rounds=1)
    return int(np.isinf(diams).sum())


def shape_report(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> dict[str, float]:
    """Summary shape statistics for one partition."""
    aspects = block_aspect_ratios(mesh.coords, assignment, k)
    compact = block_compactness(mesh.coords, assignment, k)
    return {
        "max_aspect": float(aspects.max()),
        "mean_aspect": float(aspects.mean()),
        "mean_compactness": float(compact.mean()),
        "disconnected_blocks": float(disconnected_blocks(mesh, assignment, k)),
    }
