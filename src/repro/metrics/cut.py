"""Edge-cut metrics.

``ext(V_i)`` counts edges with exactly one endpoint in block ``V_i``; the
edge cut is half the sum over blocks (each cut edge is external to exactly
two blocks) — paper §2.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment

__all__ = ["edge_cut", "external_edges"]


def _directed_cut_mask(mesh: GeometricMesh, assignment: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(source vertex of each directed edge, mask of cut directed edges)."""
    src = np.repeat(np.arange(mesh.n, dtype=np.int64), mesh.degrees())
    cut = assignment[src] != assignment[mesh.indices]
    return src, cut


def edge_cut(mesh: GeometricMesh, assignment: np.ndarray, k: int | None = None) -> int:
    """Number of undirected edges whose endpoints lie in different blocks."""
    a = check_assignment(assignment, mesh.n, k if k is not None else int(assignment.max()) + 1)
    _, cut = _directed_cut_mask(mesh, a)
    total = int(cut.sum())
    assert total % 2 == 0, "directed cut count must be even on a symmetric graph"
    return total // 2


def external_edges(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> np.ndarray:
    """``ext(V_i)`` for every block, shape ``(k,)``."""
    a = check_assignment(assignment, mesh.n, k)
    src, cut = _directed_cut_mask(mesh, a)
    return np.bincount(a[src[cut]], minlength=k)
