"""Communication-volume metrics (paper §2).

The communication volume of block ``V_i`` is the number of (vertex, foreign
block) pairs such that the vertex lives in ``V_i`` and has a neighbour in the
foreign block — exactly the number of vertex copies ``V_i`` must send during
one halo exchange / SpMV.  ``maxCommVol`` is the bottleneck block,
``totCommVol`` the network-wide traffic.

Note: the paper's formula as printed would also count a vertex's *own* block
when it has an internal neighbour; communication to one's own block is free,
so we count distinct *foreign* blocks only (the standard definition of
Hendrickson & Kolda [21], which the paper cites for this metric).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment

__all__ = ["comm_volumes", "max_comm_volume", "total_comm_volume", "boundary_pairs"]


def boundary_pairs(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> np.ndarray:
    """Unique (vertex, foreign neighbour block) pairs, shape ``(q, 2)``.

    Each row means: ``vertex`` must be sent to ``block`` during a halo
    exchange.  This is the communication *plan*; all volume metrics and the
    SpMV simulation derive from it.
    """
    a = check_assignment(assignment, mesh.n, k)
    src = np.repeat(np.arange(mesh.n, dtype=np.int64), mesh.degrees())
    nbr_block = a[mesh.indices]
    foreign = nbr_block != a[src]
    if not np.any(foreign):
        return np.empty((0, 2), dtype=np.int64)
    keys = src[foreign] * np.int64(k) + nbr_block[foreign]
    unique = np.unique(keys)
    return np.column_stack([unique // k, unique % k])


def comm_volumes(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> np.ndarray:
    """``comm(V_i)`` for every block, shape ``(k,)``."""
    a = check_assignment(assignment, mesh.n, k)
    pairs = boundary_pairs(mesh, a, k)
    if pairs.shape[0] == 0:
        return np.zeros(k, dtype=np.int64)
    return np.bincount(a[pairs[:, 0]], minlength=k)


def max_comm_volume(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> int:
    return int(comm_volumes(mesh, assignment, k).max())


def total_comm_volume(mesh: GeometricMesh, assignment: np.ndarray, k: int) -> int:
    return int(comm_volumes(mesh, assignment, k).sum())
