"""repro — reproduction of "Balanced k-means for Parallel Geometric Partitioning"
(von Looz, Tzovas, Meyerhenke; ICPP 2018, arXiv:1805.01208).

Public API overview
-------------------
- :func:`repro.core.balanced_kmeans` — the paper's balanced k-means (Alg. 2).
- :mod:`repro.partitioners` — ``Geographer`` plus the Zoltan-style baselines
  (``RCB``, ``RIB``, ``MultiJagged``, ``HSFC``) behind one interface.
- :mod:`repro.mesh` — synthetic twins of the paper's benchmark meshes.
- :mod:`repro.metrics` — edge cut, communication volumes, iFUB diameters,
  imbalance, and the Figure-2 aggregation.
- :mod:`repro.runtime` — simulated SPMD/MPI runtime with an alpha-beta cost
  model for the scaling experiments (Figures 3-4).
- :mod:`repro.spmv` — halo-exchange plans and the SpMV communication-time
  metric (``timeComm``).
- :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import BalancedKMeansConfig, KMeansResult, balanced_kmeans
from repro.mesh import GeometricMesh, make_instance
from repro.metrics import evaluate_partition
from repro.partitioners import available_partitioners, get_partitioner

__version__ = "1.0.0"

__all__ = [
    "balanced_kmeans",
    "BalancedKMeansConfig",
    "KMeansResult",
    "GeometricMesh",
    "make_instance",
    "evaluate_partition",
    "get_partitioner",
    "available_partitioners",
    "__version__",
]
