"""repro — reproduction of "Balanced k-means for Parallel Geometric Partitioning"
(von Looz, Tzovas, Meyerhenke; ICPP 2018, arXiv:1805.01208).

Public API overview
-------------------
- :func:`repro.core.balanced_kmeans` — the paper's balanced k-means (Alg. 2).
- :mod:`repro.partitioners` — ``Geographer`` plus the Zoltan-style baselines
  (``RCB``, ``RIB``, ``MultiJagged``, ``HSFC``) behind one interface.
- :mod:`repro.mesh` — synthetic twins of the paper's benchmark meshes.
- :mod:`repro.metrics` — edge cut, communication volumes, iFUB diameters,
  imbalance, and the Figure-2 aggregation.
- :mod:`repro.runtime` — SPMD runtime behind pluggable execution backends:
  ``"virtual"`` (alpha-beta cost model, for the Figure 3-4 scaling
  experiments) and ``"process"`` (real worker processes, measured timings).
- :mod:`repro.spmv` — halo-exchange plans and the SpMV communication-time
  metric (``timeComm``).
- :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.core import BalancedKMeansConfig, KMeansResult, balanced_kmeans
from repro.mesh import GeometricMesh, make_instance
from repro.metrics import evaluate_partition, migration_volume
from repro.partitioners import (
    HierarchicalPartitioner,
    PartitionResult,
    available_partitioners,
    get_partitioner,
)
from repro.runtime import MachineTopology, available_backends, make_comm

__version__ = "1.2.0"

__all__ = [
    "balanced_kmeans",
    "BalancedKMeansConfig",
    "KMeansResult",
    "PartitionResult",
    "GeometricMesh",
    "make_instance",
    "evaluate_partition",
    "migration_volume",
    "get_partitioner",
    "available_partitioners",
    "HierarchicalPartitioner",
    "MachineTopology",
    "make_comm",
    "available_backends",
    "__version__",
]
