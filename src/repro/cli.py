"""Command-line interface: ``python -m repro <command>``.

Commands
--------
- ``list``        — registry instances and available partitioners;
- ``convert``     — build a sharded on-disk dataset from an instance or file
  (consumed by ``distributed --ondisk``);
- ``partition``   — partition an instance (or METIS file) and print metrics;
- ``hierarchical``— topology-aware multi-level partition (k = k1xk2x...);
- ``repartition`` — adaptive warm-vs-cold repartitioning with migration volume;
- ``compare``     — all tools on one instance, Table-1/2 style;
- ``visualize``   — write the partition (2-D meshes) as SVG;
- ``distributed`` — run the distributed Geographer on an execution backend;
- ``resume``      — restart a checkpointed ``distributed``/``repartition`` run;
- ``spmv``        — execute a distributed SpMV through the halo plan;
- ``scaling``     — weak/strong scaling series (Figure 3);
- ``mpi``         — SPMD bridge: forward a command line to
  :mod:`repro.runtime.mpi_main` (``mpiexec -n 4 repro mpi distributed ...``);
- ``experiments`` — regenerate a named paper artifact (figure1..figure4,
  table1, table2, components, repartition);
- ``serve``       — long-lived partitioning server on a unix socket
  (warm workspaces, request batching, LRU result cache, session
  checkpoints);
- ``bench-service``— load-test a partitioning server and report p50/p99
  latency and throughput (launches a scratch server unless --socket is
  given).

Commands that exercise the SPMD runtime (``distributed``, ``spmv``,
``scaling``) accept ``--backend virtual|process|mpi``: virtual simulates
ranks in-process and reports machine-model (modeled) timings; process runs
real worker processes and mpi runs real ``mpiexec``-launched ranks (launch
through ``repro mpi`` / ``python -m repro.runtime.mpi_main``), both
reporting measured wall-clock.  The default honours the ``REPRO_BACKEND``
environment variable, then falls back to virtual.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Balanced k-means for parallel geometric partitioning (ICPP 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list instances and partitioners")

    cv = sub.add_parser("convert", help="build a sharded on-disk dataset (see `distributed --ondisk`)")
    cv.add_argument("source", help="registry instance name, METIS .graph file, or coordinate "
                                   "text file (one point per line)")
    cv.add_argument("output", help="dataset directory to create")
    cv.add_argument("--shard-rows", type=int, default=None,
                    help="rows per shard file (default 262144)")
    cv.add_argument("--scale", type=float, default=1.0, help="registry instances only")
    cv.add_argument("--seed", type=int, default=0, help="registry instances only")

    p = sub.add_parser("partition", help="partition one instance and print metrics")
    p.add_argument("instance", help="registry instance name or .graph file path")
    p.add_argument("-k", type=int, default=16, help="number of blocks (default 16)")
    p.add_argument("--tool", default="Geographer")
    p.add_argument("--epsilon", type=float, default=0.03)
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shape", action="store_true", help="also print shape metrics")

    h = sub.add_parser("hierarchical", help="topology-aware multi-level partition")
    h.add_argument("instance", help="registry instance name or .graph file path")
    h.add_argument("--levels", default="2x3x4",
                   help="factorisation k = k1xk2x... matching a machine hierarchy "
                        "(islands x nodes x cores), e.g. 2x3x4 (default)")
    h.add_argument("--tool", default="Geographer", help="inner partitioner per level")
    h.add_argument("--epsilon", type=float, default=0.03)
    h.add_argument("--scale", type=float, default=1.0)
    h.add_argument("--seed", type=int, default=0)

    rp = sub.add_parser("repartition", help="adaptive repartitioning: warm starts vs cold restarts")
    rp.add_argument("-n", type=int, default=3000, help="mesh size (default 3000)")
    rp.add_argument("-k", type=int, default=12)
    rp.add_argument("--steps", type=int, default=4)
    rp.add_argument("--epsilon", type=float, default=0.03)
    rp.add_argument("--seed", type=int, default=0)
    rp.add_argument("--checkpoint-dir", default=None,
                    help="snapshot each completed step here; rerunning with the same "
                         "parameters resumes after the last completed step")

    c = sub.add_parser("compare", help="run all tools on one instance")
    c.add_argument("instance")
    c.add_argument("-k", type=int, default=16)
    c.add_argument("--scale", type=float, default=1.0)
    c.add_argument("--seed", type=int, default=0)

    r = sub.add_parser("refine", help="FM-refine each tool's partition and report cut gains")
    r.add_argument("instance")
    r.add_argument("-k", type=int, default=16)
    r.add_argument("--scale", type=float, default=1.0)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--passes", type=int, default=5)

    v = sub.add_parser("visualize", help="render a 2-D partition to SVG")
    v.add_argument("instance")
    v.add_argument("output", help="output .svg path")
    v.add_argument("-k", type=int, default=8)
    v.add_argument("--tool", default="Geographer")
    v.add_argument("--scale", type=float, default=1.0)
    v.add_argument("--seed", type=int, default=0)

    from repro.runtime.comm import available_backends

    backends = available_backends()

    from repro.core.xp import kernel_backend_names

    d = sub.add_parser("distributed", help="distributed Geographer on an execution backend")
    d.add_argument("instance", help="registry instance name or .graph file path")
    d.add_argument("-k", type=int, default=16, help="number of blocks (default 16)")
    d.add_argument("-p", "--nranks", type=int, default=4, help="ranks (default 4)")
    d.add_argument("--backend", choices=backends, default=None,
                   help="execution backend (default: $REPRO_BACKEND, then virtual)")
    d.add_argument("--kernel-backend", choices=kernel_backend_names(), default=None,
                   help="sweep kernel engine per rank (default: $REPRO_KERNEL_BACKEND, "
                        "then numpy; unavailable backends fall back with a warning)")
    d.add_argument("--epsilon", type=float, default=0.03)
    d.add_argument("--scale", type=float, default=1.0)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--checkpoint-dir", default=None,
                   help="write superstep checkpoints here (resume with `repro resume`)")
    d.add_argument("--checkpoint-every", type=int, default=1,
                   help="iterations between checkpoints (default 1)")
    d.add_argument("--ondisk", action="store_true",
                   help="treat INSTANCE as a sharded dataset directory (see `repro convert`) "
                        "and run the out-of-core runner: peak memory O(n/ranks)")
    d.add_argument("--spill-dir", default=None,
                   help="ondisk only: directory for per-rank spill files "
                        "(default: a fresh temporary directory)")
    d.add_argument("--shuffle-out", default=None,
                   help="ondisk only: also shuffle payloads to block owners, writing "
                        "per-rank files + global remap table to this directory")

    rs = sub.add_parser(
        "resume",
        help="resume a checkpointed run (distributed or repartition) from its snapshot",
    )
    rs.add_argument("checkpoint",
                    help="checkpoint .npz file or the checkpoint directory "
                         "(directory: newest valid snapshot wins)")
    rs.add_argument("-p", "--nranks", type=int, default=None,
                    help="ranks for the resumed run (default: the checkpoint's shard "
                         "count; any value yields the same result)")
    rs.add_argument("--backend", choices=backends, default=None,
                    help="execution backend (default: $REPRO_BACKEND, then virtual)")
    rs.add_argument("--checkpoint-dir", default=None,
                    help="keep checkpointing into this directory (default: the source "
                         "directory when resuming from one)")
    rs.add_argument("--checkpoint-every", type=int, default=None,
                    help="iterations between checkpoints (default: the checkpoint's own cadence)")

    sp = sub.add_parser("spmv", help="distributed SpMV through the halo plan")
    sp.add_argument("instance", help="registry instance name or .graph file path")
    sp.add_argument("-k", type=int, default=16, help="number of blocks (default 16)")
    sp.add_argument("-p", "--nranks", type=int, default=4, help="ranks (default 4)")
    sp.add_argument("--backend", choices=backends, default=None,
                    help="execution backend (default: $REPRO_BACKEND, then virtual)")
    sp.add_argument("--tool", default="Geographer", help="partitioner producing the blocks")
    sp.add_argument("--scale", type=float, default=1.0)
    sp.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("scaling", help="weak/strong scaling series")
    s.add_argument("mode", choices=("weak", "strong"))
    s.add_argument("--ranks", type=int, nargs="+", default=None)
    s.add_argument("--backend", choices=backends, default=None,
                   help="execution backend for the measured points (rank counts up to "
                        "--measured-max-ranks; larger points are always modeled)")
    s.add_argument("--measured-max-ranks", type=int, default=None,
                   help="back points with a real run up to this many ranks "
                        "(default: 8 for weak, 0 for strong; 16 when --backend is given)")
    s.add_argument("--seed", type=int, default=0)

    m = sub.add_parser(
        "mpi",
        help="run a repro command line SPMD under mpiexec (rank 0 drives, "
             "other ranks serve; default backend becomes 'mpi')",
    )
    m.add_argument("mpi_argv", nargs=argparse.REMAINDER,
                   help="forwarded verbatim to python -m repro.runtime.mpi_main, "
                        "e.g. `mpiexec -n 4 repro mpi distributed rgg2d -p 4` or "
                        "`mpiexec -n 4 repro mpi equivalence --ranks 1 2 4`")

    e = sub.add_parser("experiments", help="regenerate a paper artifact")
    e.add_argument("name", choices=("figure1", "figure2", "figure3", "figure4",
                                    "table1", "table2", "components", "repartition"))
    e.add_argument("--out", default="results", help="output directory for figure1 SVGs")
    e.add_argument("--scale", type=float, default=0.25)
    e.add_argument("--seed", type=int, default=0)

    sv = sub.add_parser("serve", help="long-lived partitioning server on a unix socket")
    sv.add_argument("socket", help="unix socket path to listen on")
    sv.add_argument("--checkpoint-dir", default=None,
                    help="per-session checkpoints go here; restarting the server "
                         "on the same directory resumes every open session")
    sv.add_argument("--cache-capacity", type=int, default=128,
                    help="LRU result-cache entries (default 128; 0 disables)")
    sv.add_argument("--compute-threads", type=int, default=1,
                    help="partitioning executor threads (default 1)")
    sv.add_argument("--max-inflight", type=int, default=None,
                    help="admission control: max concurrent compute requests "
                         "(default unlimited)")
    sv.add_argument("--max-queue", type=int, default=256,
                    help="admission control: max requests queued behind the "
                         "in-flight limit before shedding with 'overloaded' "
                         "(default 256)")
    sv.add_argument("--compute-timeout", type=float, default=None,
                    help="supervisor hang limit per compute in seconds "
                         "(default: $REPRO_SERVICE_COMPUTE_TIMEOUT, else off)")
    sv.add_argument("--breaker-threshold", type=int, default=3,
                    help="consecutive compute failures that open a dataset's "
                         "circuit breaker (default 3)")
    sv.add_argument("--breaker-reset", type=float, default=5.0,
                    help="seconds before an open breaker half-opens (default 5)")
    sv.add_argument("--drain-grace", type=float, default=10.0,
                    help="hard deadline in seconds for in-flight requests "
                         "during SIGTERM/shutdown drain (default 10)")

    bs = sub.add_parser("bench-service",
                        help="load-test a partitioning server: p50/p99 latency + throughput")
    bs.add_argument("--socket", default=None,
                    help="hammer an already-running server (default: launch a "
                         "scratch in-process server and shut it down after)")
    bs.add_argument("-n", "--n-points", type=int, default=2000)
    bs.add_argument("-k", type=int, default=8)
    bs.add_argument("--epsilon", type=float, default=0.03)
    bs.add_argument("--clients", type=int, default=32)
    bs.add_argument("--requests", type=int, default=4,
                    help="requests per client (default 4)")
    bs.add_argument("--seeds", type=int, default=4,
                    help="distinct request seeds cycled across clients (default 4)")
    bs.add_argument("--cache-capacity", type=int, default=128)
    bs.add_argument("--compute-threads", type=int, default=1)
    bs.add_argument("--seed", type=int, default=0, help="dataset generation seed")
    bs.add_argument("--no-verify", action="store_true",
                    help="skip the bit-identity check against direct partition()")
    bs.add_argument("--out-json", default=None,
                    help="also write the full report as JSON here")
    bs.add_argument("--retries", type=int, default=None,
                    help="max attempts per request incl. the first "
                         "(default: the client's standard retry policy, 4)")
    bs.add_argument("--deadline-ms", type=float, default=None,
                    help="attach a per-request deadline_ms to every request")
    bs.add_argument("--request-timeout", type=float, default=300.0,
                    help="client reply timeout in seconds (default 300)")
    bs.add_argument("--max-inflight", type=int, default=None,
                    help="scratch server only: admission-control in-flight cap")
    bs.add_argument("--max-queue", type=int, default=256,
                    help="scratch server only: admission-control queue bound "
                         "(default 256)")
    return parser


def _load_mesh(name: str, scale: float, seed: int):
    from repro.mesh.io import read_metis
    from repro.mesh.registry import REGISTRY

    if name in REGISTRY:
        return REGISTRY[name].make(scale=scale, seed=seed)
    if name.endswith(".graph"):
        return read_metis(name)
    raise SystemExit(f"unknown instance {name!r}; try `python -m repro list`")


def _cmd_list() -> None:
    from repro.mesh.registry import REGISTRY
    from repro.partitioners.base import available_partitioners

    print("partitioners:", ", ".join(available_partitioners()))
    print(f"\n{'instance':<16}{'class':<12}{'default n':>10}  paper graph (paper n)")
    print("-" * 72)
    for spec in sorted(REGISTRY.values(), key=lambda s: (s.instance_class, s.name)):
        paper_n = f"({spec.paper_n:,})" if spec.paper_n else ""
        print(f"{spec.name:<16}{spec.instance_class:<12}{spec.default_n:>10}  {spec.paper_name} {paper_n}")


def _cmd_convert(args) -> None:
    from repro.io.sharded import DEFAULT_SHARD_ROWS, ShardedDatasetWriter, write_sharded
    from repro.mesh.io import coords_meta, iter_coords, iter_metis_weights
    from repro.mesh.registry import REGISTRY

    shard_rows = args.shard_rows or DEFAULT_SHARD_ROWS
    if args.source in REGISTRY:
        mesh = REGISTRY[args.source].make(scale=args.scale, seed=args.seed)
        ds = write_sharded(args.output, mesh.coords, weights=mesh.node_weights,
                           shard_rows=shard_rows)
    elif args.source.endswith(".graph"):
        import os

        base, _ = os.path.splitext(args.source)
        xyz = base + ".xyz"
        if not os.path.exists(xyz):
            raise SystemExit(f"coordinate sidecar {xyz} not found")
        _, dim = coords_meta(xyz)
        writer = ShardedDatasetWriter(args.output, dim=dim, shard_rows=shard_rows,
                                      with_weights=True)
        for pts, w in zip(iter_coords(xyz), iter_metis_weights(args.source)):
            writer.append(pts, weights=w)
        ds = writer.finalize()
    else:
        ds = write_sharded(args.output, iter_coords(args.source), shard_rows=shard_rows)
    print(f"wrote {ds.directory}: n={ds.n} dim={ds.dim} shards={ds.nshards} "
          f"({ds.nbytes / 1e6:.1f} MB)\nmanifest digest {ds.digest}")


def _cmd_partition(args) -> None:
    from repro.experiments.harness import format_rows, run_tool_on_mesh
    from repro.metrics.shape import shape_report

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    print(f"{mesh}")
    row = run_tool_on_mesh(mesh, args.tool, args.k, epsilon=args.epsilon, seed=args.seed)
    print(format_rows([row]))
    if args.shape:
        from repro.partitioners.base import get_partitioner

        result = get_partitioner(args.tool).partition_mesh(mesh, args.k, rng=args.seed)
        print("\nshape:", shape_report(mesh, result.assignment, args.k))


def _cmd_hierarchical(args) -> None:
    import math

    from repro.experiments.harness import format_rows
    from repro.metrics.imbalance import imbalance
    from repro.metrics.report import evaluate_partition
    from repro.partitioners.hierarchical import HierarchicalPartitioner
    from repro.runtime.costmodel import MachineTopology
    from repro.util.timers import Timer

    try:
        levels = tuple(int(part) for part in args.levels.lower().split("x"))
        topology = MachineTopology(branching=levels)
    except ValueError:
        raise SystemExit(f"bad --levels {args.levels!r}; expected positive factors like 2x3x4")
    mesh = _load_mesh(args.instance, args.scale, args.seed)
    partitioner = HierarchicalPartitioner(topology=topology, inner=args.tool)
    with Timer() as t:
        result = partitioner.partition_mesh(mesh, epsilon=args.epsilon, rng=args.seed)
    print(f"{mesh}\nlevels {'x'.join(map(str, levels))} -> k={result.k}, "
          f"inner={args.tool}, imbalance={result.imbalance:.3f}\n")
    for level, name in enumerate(topology.level_names):
        coarse = result.level_assignment(level)
        coarse_k = math.prod(levels[: level + 1])
        print(f"  level {level} ({name:>6}): {coarse_k:>4} blocks, "
              f"imbalance {imbalance(coarse, coarse_k, mesh.node_weights):.3f}")
    row = evaluate_partition(mesh, result.assignment, result.k,
                             tool=f"Hier({args.tool})", time=t.elapsed)
    print()
    print(format_rows([row]))


def _cmd_repartition(args) -> None:
    from repro.experiments import repartitioning

    rows = repartitioning.run(n=args.n, k=args.k, steps=args.steps,
                              epsilon=args.epsilon, seed=args.seed,
                              checkpoint_dir=args.checkpoint_dir)
    print(repartitioning.format_result(
        rows, title=f"adaptive repartitioning: n={args.n}, k={args.k}, {args.steps} steps"))


def _cmd_compare(args) -> None:
    from repro.experiments.harness import format_rows, run_tools_on_mesh

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    rows = run_tools_on_mesh(mesh, args.k, seed=args.seed)
    print(format_rows(rows, title=f"{mesh.name}: all tools, k={args.k}"))


def _cmd_refine(args) -> None:
    from repro.experiments.harness import PAPER_TOOLS
    from repro.partitioners.base import get_partitioner
    from repro.refine.fm import fm_refine

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    print(f"{mesh}, k={args.k}\n")
    print(f"{'tool':<14}{'cut before':>11}{'cut after':>11}{'gain':>8}{'moves':>7}")
    print("-" * 51)
    for tool in PAPER_TOOLS:
        result = get_partitioner(tool).partition_mesh(mesh, args.k, rng=args.seed)
        _, stats = fm_refine(mesh, result.assignment, args.k, max_passes=args.passes)
        print(f"{tool:<14}{stats.cut_before:>11}{stats.cut_after:>11}{stats.improvement:>7.1%}{stats.moves:>7}")


def _cmd_visualize(args) -> None:
    from repro.partitioners.base import get_partitioner
    from repro.viz.svg import render_partition_svg

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    result = get_partitioner(args.tool).partition_mesh(mesh, args.k, rng=args.seed)
    render_partition_svg(mesh, result.assignment, path=args.output,
                         title=f"{args.tool} on {mesh.name}, k={args.k}")
    print(f"wrote {args.output}")


def _cmd_distributed(args) -> None:
    if args.ondisk:
        return _cmd_distributed_ondisk(args)
    from repro.experiments.harness import format_ledger, format_rows, run_distributed_on_mesh

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    print(f"{mesh}")
    provenance = None
    if args.checkpoint_dir is not None:
        # everything `repro resume` needs to rebuild this exact run from the
        # checkpoint file alone
        provenance = {
            "instance": args.instance, "scale": args.scale, "seed": args.seed,
            "epsilon": args.epsilon, "kernel_backend": args.kernel_backend,
            "k": args.k, "nranks": args.nranks,
        }
    row, result = run_distributed_on_mesh(
        mesh, args.k, args.nranks, backend=args.backend,
        epsilon=args.epsilon, seed=args.seed,
        kernel_backend=args.kernel_backend,
        checkpoint=args.checkpoint_dir, checkpoint_every=args.checkpoint_every,
        provenance=provenance,
    )
    print(format_rows([row]))
    state = "converged" if result.converged else "iteration cap"
    print(f"\nbackend={result.backend} p={result.nranks}: "
          f"{result.iterations} iterations ({state}), imbalance {result.imbalance:.3f}")
    print(format_ledger(result.ledger, measured=result.measured))


def _cmd_distributed_ondisk(args) -> None:
    from repro.core.config import BalancedKMeansConfig
    from repro.experiments.harness import format_ledger
    from repro.io.sharded import ShardedDataset
    from repro.runtime.ondisk import ondisk_distributed_kmeans

    dataset = ShardedDataset(args.instance)
    print(f"sharded dataset {args.instance}: n={dataset.n} dim={dataset.dim} "
          f"shards={dataset.nshards}")
    cfg = BalancedKMeansConfig(epsilon=args.epsilon)
    provenance = None
    if args.checkpoint_dir is not None:
        provenance = {
            "manifest": args.instance, "epsilon": args.epsilon, "seed": args.seed,
            "k": args.k, "nranks": args.nranks,
        }
    result = ondisk_distributed_kmeans(
        dataset, args.k, args.nranks, config=cfg, rng=args.seed,
        backend=args.backend, spill_dir=args.spill_dir,
        checkpoint=args.checkpoint_dir, checkpoint_every=args.checkpoint_every,
        provenance=provenance,
    )
    state = "converged" if result.converged else "iteration cap"
    print(f"backend={result.backend} p={result.nranks}: "
          f"{result.iterations} iterations ({state}), imbalance {result.imbalance:.3f}")
    print(f"assignment (original order): {result.assignment_handle.path}")
    print(format_ledger(result.ledger, measured=result.measured))
    if args.shuffle_out is not None:
        from repro.runtime.shuffle import shuffle_to_disk, verify_shuffle

        output = shuffle_to_disk(result, args.shuffle_out, backend=args.backend)
        report = verify_shuffle(output)
        print(f"\nshuffled to {args.shuffle_out}: counts={report['counts']} "
              f"(conservation verified)")


def _cmd_resume(args) -> None:
    import os

    from repro.runtime.checkpoint import load_resume

    _, meta = load_resume(args.checkpoint)
    kind = meta.get("kind", "<missing>")
    provenance = meta.get("provenance")
    source_dir = args.checkpoint if os.path.isdir(args.checkpoint) else None

    if kind == "distributed-kmeans":
        if not provenance or "instance" not in provenance:
            raise SystemExit(
                "checkpoint carries no CLI provenance (the run was launched through "
                "the API); resume it with distributed_balanced_kmeans(resume_from=...) "
                "against the original points instead"
            )
        from repro.experiments.harness import format_ledger, format_rows, run_distributed_on_mesh

        mesh = _load_mesh(provenance["instance"], float(provenance["scale"]),
                          int(provenance["seed"]))
        nranks = args.nranks if args.nranks is not None else int(meta["nshards"])
        every = (args.checkpoint_every if args.checkpoint_every is not None
                 else int(meta.get("checkpoint_every", 1)))
        checkpoint_dir = args.checkpoint_dir if args.checkpoint_dir is not None else source_dir
        print(f"{mesh}\nresuming distributed run at iteration {meta['iteration']} "
              f"(shards={meta['nshards']}, ranks={nranks})")
        row, result = run_distributed_on_mesh(
            mesh, int(provenance["k"]), nranks, backend=args.backend,
            epsilon=float(provenance["epsilon"]), seed=int(provenance["seed"]),
            kernel_backend=provenance.get("kernel_backend"),
            checkpoint=checkpoint_dir, checkpoint_every=every,
            resume_from=args.checkpoint, provenance=provenance,
        )
        print(format_rows([row]))
        state = "converged" if result.converged else "iteration cap"
        print(f"\nbackend={result.backend} p={result.nranks}: "
              f"{result.iterations} iterations ({state}), imbalance {result.imbalance:.3f}")
        print(format_ledger(result.ledger, measured=result.measured))
    elif kind == "distributed-kmeans-ondisk":
        if not provenance or "manifest" not in provenance:
            raise SystemExit(
                "checkpoint carries no CLI provenance (the run was launched through "
                "the API); resume it with ondisk_distributed_kmeans(resume_from=...) "
                "against the original dataset instead"
            )
        from repro.core.config import BalancedKMeansConfig
        from repro.experiments.harness import format_ledger
        from repro.runtime.ondisk import ondisk_distributed_kmeans

        nranks = args.nranks if args.nranks is not None else int(meta["nshards"])
        every = (args.checkpoint_every if args.checkpoint_every is not None
                 else int(meta.get("checkpoint_every", 1)))
        checkpoint_dir = args.checkpoint_dir if args.checkpoint_dir is not None else source_dir
        print(f"resuming out-of-core run at iteration {meta['iteration']} "
              f"(shards={meta['nshards']}, ranks={nranks})")
        result = ondisk_distributed_kmeans(
            provenance["manifest"], int(provenance["k"]), nranks,
            config=BalancedKMeansConfig(epsilon=float(provenance["epsilon"])),
            backend=args.backend,
            checkpoint=checkpoint_dir, checkpoint_every=every,
            resume_from=args.checkpoint, provenance=provenance,
        )
        state = "converged" if result.converged else "iteration cap"
        print(f"backend={result.backend} p={result.nranks}: "
              f"{result.iterations} iterations ({state}), imbalance {result.imbalance:.3f}")
        print(f"assignment (original order): {result.assignment_handle.path}")
        print(format_ledger(result.ledger, measured=result.measured))
    elif kind == "repartition":
        if not provenance:
            raise SystemExit("repartition checkpoint carries no provenance; cannot resume")
        if source_dir is None:
            source_dir = os.path.dirname(os.path.abspath(args.checkpoint))
        checkpoint_dir = args.checkpoint_dir if args.checkpoint_dir is not None else source_dir
        from repro.experiments import repartitioning

        print(f"resuming repartition experiment after step {meta['step']}")
        rows = repartitioning.run(
            n=int(provenance["n"]), k=int(provenance["k"]), steps=int(provenance["steps"]),
            epsilon=float(provenance["epsilon"]), seed=int(provenance["seed"]),
            tool=provenance["tool"], radii=tuple(provenance["radii"]),
            checkpoint_dir=checkpoint_dir,
        )
        print(repartitioning.format_result(
            rows, title=f"adaptive repartitioning: n={provenance['n']}, "
                        f"k={provenance['k']}, {provenance['steps']} steps"))
    else:
        raise SystemExit(
            f"don't know how to resume a {kind!r} checkpoint from the CLI "
            "(serial-kmeans checkpoints resume through balanced_kmeans(resume_from=...))"
        )


def _cmd_spmv(args) -> None:
    import numpy as np

    from repro.experiments.harness import format_ledger
    from repro.partitioners.base import get_partitioner
    from repro.runtime.comm import make_comm
    from repro.spmv.distspmv import distributed_spmv

    mesh = _load_mesh(args.instance, args.scale, args.seed)
    result = get_partitioner(args.tool).partition_mesh(mesh, args.k, rng=args.seed)
    x = np.random.default_rng(args.seed).random(mesh.n)
    with make_comm(args.nranks, backend=args.backend) as comm:
        y, comm_time = distributed_spmv(mesh, result.assignment, args.k, x, comm=comm)
        err = float(np.abs(y - mesh.to_scipy() @ x).max())
        print(f"{mesh}\n{args.tool} partition, k={args.k}, p={comm.nranks}, "
              f"backend={comm.kind}")
        print(f"max |y_dist - y_global| = {err:.3e}  (halo plan complete: {err == 0.0})")
        print(f"modeled halo-exchange time: {comm_time:.3e} s")
        print(format_ledger(comm.ledger, measured=comm.measured))


def _cmd_mpi(args) -> int:
    from repro.runtime.mpi_main import main as mpi_main

    return mpi_main(args.mpi_argv)


def _cmd_scaling(args) -> None:
    from repro.experiments import figure3

    # asking for a backend means asking for measured points: raise the
    # measured cutoff so small rank counts actually execute on it
    measured_max = args.measured_max_ranks
    if measured_max is None and args.backend is not None:
        measured_max = 16
    extra = {} if measured_max is None else {"measured_max_ranks": measured_max}
    if args.mode == "weak":
        ranks = tuple(args.ranks) if args.ranks else (32, 128, 512, 2048, 8192)
        points = figure3.run_weak(rank_counts=ranks, seed=args.seed,
                                  backend=args.backend, **extra)
    else:
        ranks = tuple(args.ranks) if args.ranks else (1024, 2048, 4096, 8192, 16384)
        points = figure3.run_strong(rank_counts=ranks, seed=args.seed,
                                    backend=args.backend, **extra)
    print(figure3.format_points(points, title=f"{args.mode} scaling"))


def _cmd_experiments(args) -> None:
    from repro.experiments import (
        components,
        figure1,
        figure2,
        figure3,
        figure4,
        repartitioning,
        tables,
    )

    if args.name == "figure1":
        outputs = figure1.run(args.out, seed=args.seed)
        for panel, path in outputs.items():
            print(f"{panel}: {path}")
    elif args.name == "figure2":
        print(figure2.format_result(figure2.run(k=16, scale=args.scale, seed=args.seed)))
    elif args.name == "figure3":
        print(figure3.format_points(figure3.run_weak(seed=args.seed), "Figure 3a"))
        print()
        print(figure3.format_points(figure3.run_strong(seed=args.seed), "Figure 3b"))
    elif args.name == "figure4":
        print(figure4.format_result(figure4.run(scale=args.scale, seed=args.seed)))
    elif args.name == "table1":
        print(tables.format_table(tables.run_table1(scale=args.scale, seed=args.seed), "Table 1 (scaled)"))
    elif args.name == "table2":
        print(tables.format_table(tables.run_table2(scale=args.scale, seed=args.seed), "Table 2 (scaled)"))
    elif args.name == "components":
        print(components.format_result(components.run(seed=args.seed)))
    elif args.name == "repartition":
        n = max(500, int(3000 * args.scale * 4))
        print(repartitioning.format_result(repartitioning.run(n=n, seed=args.seed)))


def _cmd_serve(args) -> None:
    import asyncio

    from repro.service.server import serve

    def announce() -> None:
        print(f"partitioning server listening on {args.socket}", flush=True)
        if args.checkpoint_dir:
            print(f"session checkpoints under {args.checkpoint_dir}", flush=True)

    asyncio.run(serve(
        args.socket,
        checkpoint_dir=args.checkpoint_dir,
        cache_capacity=args.cache_capacity,
        compute_threads=args.compute_threads,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        compute_timeout=args.compute_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        drain_grace=args.drain_grace,
        ready_callback=announce,
    ))


def _cmd_bench_service(args) -> None:
    from repro.service.loadtest import format_report, run_load_test

    report = run_load_test(
        socket_path=args.socket,
        n_points=args.n_points,
        k=args.k,
        epsilon=args.epsilon,
        clients=args.clients,
        requests_per_client=args.requests,
        distinct_seeds=args.seeds,
        cache_capacity=args.cache_capacity,
        compute_threads=args.compute_threads,
        seed=args.seed,
        verify_identity=not args.no_verify,
        out_json=args.out_json,
        retries=args.retries,
        deadline_ms=args.deadline_ms,
        request_timeout=args.request_timeout,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
    )
    print(format_report(report))
    if args.out_json:
        print(f"wrote {args.out_json}")
    if report["errors"] or not report["identity_ok"] or report["unjoined_workers"]:
        raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    dispatch = {
        "list": lambda: _cmd_list(),
        "convert": lambda: _cmd_convert(args),
        "partition": lambda: _cmd_partition(args),
        "hierarchical": lambda: _cmd_hierarchical(args),
        "repartition": lambda: _cmd_repartition(args),
        "compare": lambda: _cmd_compare(args),
        "refine": lambda: _cmd_refine(args),
        "visualize": lambda: _cmd_visualize(args),
        "distributed": lambda: _cmd_distributed(args),
        "resume": lambda: _cmd_resume(args),
        "spmv": lambda: _cmd_spmv(args),
        "mpi": lambda: _cmd_mpi(args),
        "scaling": lambda: _cmd_scaling(args),
        "experiments": lambda: _cmd_experiments(args),
        "serve": lambda: _cmd_serve(args),
        "bench-service": lambda: _cmd_bench_service(args),
    }
    code = dispatch[args.command]()
    return int(code or 0)


if __name__ == "__main__":
    sys.exit(main())
