"""LRU cache for partition results, with hit/miss counters in a cost ledger.

Keys are the full determinism tuple of a request —
``(data_digest, k, epsilon, weights_hash, seed)`` — so a hit is guaranteed
bit-identical to recomputing: every input that can influence the result is
part of the key (the data digest covers points, the weights hash covers the
effective per-point loads, and the seed pins the stochastic parts).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.runtime.comm import CostLedger

__all__ = ["LRUResultCache", "weights_hash"]


def weights_hash(weights: np.ndarray | None) -> str:
    """Stable digest of an optional per-point weight array (``"-"`` for None)."""
    if weights is None:
        return "-"
    arr = np.ascontiguousarray(np.asarray(weights))
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()[:32]


class LRUResultCache:
    """Bounded mapping from request keys to partition results.

    ``get``/``put`` bump the ``cache_hit`` / ``cache_miss`` /
    ``cache_eviction`` counters on the supplied
    :class:`~repro.runtime.comm.CostLedger` (the service's ledger), so cache
    effectiveness shows up next to the timing breakdown.  Not thread-safe on
    its own; the service serialises access through its event loop.
    """

    def __init__(self, capacity: int = 128, ledger: CostLedger | None = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.ledger = ledger if ledger is not None else CostLedger()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple):
        """The cached result for ``key`` (freshened to most-recent), or None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.ledger.count("cache_hit")
            return self._entries[key]
        self.ledger.count("cache_miss")
        return None

    def put(self, key: tuple, value) -> None:
        """Insert ``value``, evicting the least-recently-used past capacity."""
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.ledger.count("cache_eviction")

    def clear(self) -> None:
        self._entries.clear()

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus the current size."""
        c = self.ledger.counters
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": c.get("cache_hit", 0),
            "misses": c.get("cache_miss", 0),
            "evictions": c.get("cache_eviction", 0),
        }
