"""Wire protocol: length-prefixed pickle frames over a local socket.

One frame = a 4-byte big-endian payload length followed by a pickle of one
Python object.  Requests are dicts with an ``"op"`` key (plus an optional
``"deadline_ms"`` request budget); responses are dicts with ``"status"``
(``"ok"`` or ``"error"``).  Error responses are structured: they carry
``"code"`` (one of the :mod:`repro.service.resilience` error codes),
``"retryable"`` and ``"retry_after_ms"`` alongside the human-readable
``"error"`` message, so clients can implement retry policies without string
matching.  Pickle is appropriate here because the server listens on a
**unix domain socket** owned by the user who launched it — clients are
trusted local processes, exactly like the pickle-over-pipe transport of the
process backend (:mod:`repro.runtime.procomm`).  Do not expose the socket
to untrusted peers.

Both asyncio (server-side) and blocking (client-side) helpers live here so
the framing cannot drift between the two.  Every malformed input — an
oversized or truncated frame, undecodable payload bytes, a peer that stalls
mid-frame past the caller's timeout — surfaces as :class:`ProtocolError`
(or the :class:`ProtocolTimeout` subclass), never as a hang or a raw
pickle/struct exception.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ProtocolTimeout",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame (1 GiB) — catches corrupt headers before a
#: nonsense length turns into an absurd allocation.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """A malformed or oversized frame (or a closed peer mid-frame).

    Carries the structured-error fields so the server can answer a broken
    frame with a typed ``bad_frame`` payload before disconnecting.
    """

    code = "bad_frame"
    retryable = False
    retry_after_ms: int | None = None


class ProtocolTimeout(ProtocolError):
    """The peer stalled past the caller's timeout mid-frame or mid-reply.

    After a timeout the connection's framing can no longer be trusted (the
    stale reply may still arrive later), so callers must close and reconnect
    rather than reuse the socket.
    """


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    return length


def _loads(payload: bytes):
    try:
        return pickle.loads(payload)
    except Exception as exc:  # garbage bytes behind a plausible header
        raise ProtocolError(f"undecodable frame payload: {type(exc).__name__}: {exc}") from exc


# -- asyncio (server) ---------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader):
    """Read one frame; raises ``asyncio.IncompleteReadError`` on EOF."""
    header = await reader.readexactly(_HEADER.size)
    length = _check_length(_HEADER.unpack(header)[0])
    payload = await reader.readexactly(length)
    return _loads(payload)


async def write_frame(writer: asyncio.StreamWriter, obj) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(_HEADER.pack(len(payload)) + payload)
    await writer.drain()


# -- blocking (client) --------------------------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        try:
            chunk = sock.recv(remaining)
        except TimeoutError as exc:
            raise ProtocolTimeout(
                f"peer stalled: no bytes for {sock.gettimeout():g}s with "
                f"{remaining} of {n} still expected"
            ) from exc
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, timeout: float | None = None):
    """Receive one frame, waiting at most ``timeout`` seconds for *each* read.

    ``timeout=None`` keeps the socket's current timeout (possibly blocking
    forever).  A stall raises :class:`ProtocolTimeout`; a peer that closes
    mid-frame raises :class:`ProtocolError` — reads can never hang a client
    thread when a timeout is set.
    """
    if timeout is not None:
        sock.settimeout(timeout)
    header = _recv_exactly(sock, _HEADER.size)
    length = _check_length(_HEADER.unpack(header)[0])
    return _loads(_recv_exactly(sock, length))


def send_frame(sock: socket.socket, obj) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)
