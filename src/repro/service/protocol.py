"""Wire protocol: length-prefixed pickle frames over a local socket.

One frame = a 4-byte big-endian payload length followed by a pickle of one
Python object.  Requests are dicts with an ``"op"`` key; responses are dicts
with ``"status"`` (``"ok"`` or ``"error"``).  Pickle is appropriate here
because the server listens on a **unix domain socket** owned by the user who
launched it — clients are trusted local processes, exactly like the
pickle-over-pipe transport of the process backend
(:mod:`repro.runtime.procomm`).  Do not expose the socket to untrusted
peers.

Both asyncio (server-side) and blocking (client-side) helpers live here so
the framing cannot drift between the two.
"""

from __future__ import annotations

import asyncio
import pickle
import socket
import struct

__all__ = [
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "read_frame",
    "write_frame",
    "recv_frame",
    "send_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame (1 GiB) — catches corrupt headers before a
#: nonsense length turns into an absurd allocation.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """A malformed or oversized frame (or a closed peer mid-frame)."""


def _check_length(length: int) -> int:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES} limit")
    return length


# -- asyncio (server) ---------------------------------------------------------


async def read_frame(reader: asyncio.StreamReader):
    """Read one frame; raises ``asyncio.IncompleteReadError`` on EOF."""
    header = await reader.readexactly(_HEADER.size)
    length = _check_length(_HEADER.unpack(header)[0])
    payload = await reader.readexactly(length)
    return pickle.loads(payload)


async def write_frame(writer: asyncio.StreamWriter, obj) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(_HEADER.pack(len(payload)) + payload)
    await writer.drain()


# -- blocking (client) --------------------------------------------------------


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket):
    header = _recv_exactly(sock, _HEADER.size)
    length = _check_length(_HEADER.unpack(header)[0])
    return pickle.loads(_recv_exactly(sock, length))


def send_frame(sock: socket.socket, obj) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)
