"""The partitioning service core and its asyncio socket front-end.

:class:`PartitionService` is the in-process heart — an asyncio object whose
coroutines implement the whole feature set (datasets in shared memory, warm
sessions, coalescing/batching, the LRU cache, per-session checkpoints,
graceful drain).  :class:`PartitionServer` is a thin transport: it exposes
those coroutines over length-prefixed pickle frames on a unix socket
(:mod:`repro.service.protocol`) so many client processes can share one warm
server.  Keeping the core transport-free makes every behaviour testable
without sockets.

Request lifecycle (the SLO-aware path added by the resilience layer,
:mod:`repro.service.resilience`)::

    deadline_ms -> admission control -> circuit breaker -> supervised compute
        -> commit (atomic) -> checkpoint -> reply

Requests carrying ``deadline_ms`` are cancelled at the deadline; state only
commits *after* a compute succeeds, so a deadline-cancelled or crashed
request leaves sessions exactly at their checkpointed step and a retry is
bit-identical.  Admission sheds over-limit requests immediately with a
structured ``overloaded`` error; per-dataset breakers fail fast after
consecutive compute failures; the :class:`ComputeSupervisor` detects hung
compute, abandons it, and replaces the executor (a *respawn*), with an
optional :class:`~repro.runtime.faults.FaultPlan` deterministically killing
or stalling scheduled requests for chaos tests.

Determinism contract: every result is **bit-identical** to calling
``GeographerPartitioner().partition(...)`` / ``.repartition(...)`` directly
with the same inputs.  Warm workspaces only skip redundant cache builds
(never change sweep results — the PR-2/4 property), the result cache keys on
every determinism-relevant input, coalescing shares one computation between
identical requests, and session step ``i`` always runs with
``rng = seed + i`` so a resumed server replays the exact rng sequence.
Retried requests are idempotent: one-shot results come from the digest LRU,
and session steps replay by ``request_id`` instead of recomputing.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import uuid
from dataclasses import dataclass, field

import numpy as np

from repro.core.balanced_kmeans import compute_sfc_order
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import SweepWorkspace
from repro.partitioners.geographer import GeographerPartitioner
from repro.partitioners.result import PartitionResult
from repro.runtime.checkpoint import CheckpointStore, data_digest, validate_meta
from repro.runtime.comm import CostLedger
from repro.runtime.faults import FaultPlan
from repro.runtime.procomm import share_array, share_array_from_rows, unlink_array
from repro.service.cache import LRUResultCache, weights_hash
from repro.service.protocol import ProtocolError, read_frame, write_frame
from repro.service.resilience import (
    AdmissionController,
    CircuitBreaker,
    ComputeFailed,
    ComputeSupervisor,
    ComputeTimeout,
    DeadlineExceeded,
    ServiceError,
    ShuttingDown,
    error_payload,
    service_compute_timeout,
)

__all__ = ["PartitionServer", "PartitionService", "ServiceError", "SESSION_CHECKPOINT_KIND"]

#: ``kind`` tag of per-session checkpoints (rejects resuming foreign files).
SESSION_CHECKPOINT_KIND = "service-session"


@dataclass
class _Dataset:
    dataset_id: str
    points: np.ndarray  # SharedArray view over a server-owned segment
    weights: np.ndarray | None  # ditto, or None for unit weights
    digest: str
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    sfc_order: np.ndarray | None = None
    workspaces: dict[int, SweepWorkspace] = field(default_factory=dict)


@dataclass
class _Session:
    session_id: str
    dataset_id: str
    k: int
    epsilon: float
    seed: int
    step: int = 0
    previous: PartitionResult | None = None
    # session-private geometry (None -> the dataset's shared points) and the
    # session's current weights (None -> the dataset's registered weights)
    points: np.ndarray | None = None
    weights: np.ndarray | None = None
    sfc_order: np.ndarray | None = None
    workspace: SweepWorkspace | None = None
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    store: CheckpointStore | None = None
    # idempotency: the last committed (request_id, result) pair, so a client
    # retry of an already-applied step replays instead of recomputing
    last_request: tuple[str, PartitionResult] | None = None


class PartitionService:
    """Long-lived partitioning core: warm state + caching over Geographer.

    Parameters
    ----------
    config:
        The :class:`BalancedKMeansConfig` every request runs under (the
        per-request ``epsilon`` overrides the config's, exactly like
        :class:`GeographerPartitioner`); also selects the kernel backend
        the warm workspaces are built for.
    checkpoint_dir:
        Root directory for per-session checkpoints — each session writes
        into its own ``run_id`` namespace (the concurrency-safe layout of
        :class:`CheckpointStore`).  On construction, existing session
        checkpoints under this root are loaded and their sessions (and
        backing datasets) rebuilt, which is how a SIGKILLed server resumes.
        ``None`` disables checkpointing.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    compute_threads:
        Executor threads for the numeric work.  The default 1 serialises
        all sweeps (per-dataset locks already serialise same-dataset work);
        raise it to overlap distinct datasets.
    max_inflight / max_queue:
        Admission-control bounds: at most ``max_inflight`` compute requests
        run concurrently and at most ``max_queue`` wait behind them; the
        rest are shed immediately with ``overloaded`` + ``retry_after_ms``.
        ``None`` disables the respective bound.
    compute_timeout:
        Supervisor hang limit (seconds) per compute; default comes from
        ``REPRO_SERVICE_COMPUTE_TIMEOUT`` (unset = no watchdog).
    breaker_threshold / breaker_reset:
        Per-dataset circuit breaker: open after ``breaker_threshold``
        consecutive compute failures, half-open probe after
        ``breaker_reset`` seconds.
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan` executed against
        the compute path (and checkpoint saves) for chaos testing.
    """

    def __init__(
        self,
        config: BalancedKMeansConfig | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        cache_capacity: int = 128,
        compute_threads: int = 1,
        max_inflight: int | None = None,
        max_queue: int | None = 256,
        compute_timeout: float | None = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 5.0,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config or BalancedKMeansConfig()
        self.checkpoint_dir = os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        self.ledger = CostLedger()
        self.cache = LRUResultCache(cache_capacity, ledger=self.ledger)
        self.faults = faults
        self._datasets: dict[str, _Dataset] = {}
        self._sessions: dict[str, _Session] = {}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._supervisor = ComputeSupervisor(
            threads=compute_threads,
            timeout=compute_timeout if compute_timeout is not None
            else service_compute_timeout(),
            faults=faults,
            ledger=self.ledger,
        )
        self._admission = AdmissionController(
            max_inflight=max_inflight,
            max_queue=max_queue,
            ledger=self.ledger,
            retry_hint=self._supervisor.retry_after_ms,
        )
        self._breaker_threshold = int(breaker_threshold)
        self._breaker_reset = float(breaker_reset)
        self._breakers: dict[str, CircuitBreaker] = {}
        self._closed = False
        if self.checkpoint_dir is not None:
            self._resume_sessions()

    def _breaker(self, dataset_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(dataset_id)
        if breaker is None:
            breaker = CircuitBreaker(
                dataset_id,
                threshold=self._breaker_threshold,
                reset_seconds=self._breaker_reset,
                ledger=self.ledger,
            )
            self._breakers[dataset_id] = breaker
        return breaker

    # -- datasets ------------------------------------------------------------

    async def register_dataset(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        dataset_id: str | None = None,
    ) -> dict:
        """Copy ``points``/``weights`` into server-owned shared segments.

        Idempotent: re-registering identical data under the same id (or the
        digest-derived default id) returns the existing registration, so
        clients may blindly register on connect.  Returns
        ``{"dataset_id", "digest", "n", "dim"}``.
        """
        self._ensure_open()
        return self._register_dataset_sync(points, weights, dataset_id)

    def _register_dataset_sync(self, points, weights, dataset_id=None) -> dict:
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] not in (2, 3):
            raise ServiceError(f"points must be (n, 2|3), got shape {pts.shape}")
        w = None
        if weights is not None:
            w = np.ascontiguousarray(weights, dtype=np.float64)
            if w.shape != (pts.shape[0],):
                raise ServiceError(f"weights shape {w.shape} does not match {pts.shape[0]} points")
        digest = data_digest(pts, *( [w] if w is not None else [] ))
        if dataset_id is None:
            dataset_id = f"ds-{digest[:12]}"
        existing = self._datasets.get(dataset_id)
        if existing is not None:
            if existing.digest != digest:
                raise ServiceError(
                    f"dataset id {dataset_id!r} is already registered with different data"
                )
            self.ledger.count("dataset_rehits")
            return self._dataset_info(existing)
        ds = _Dataset(
            dataset_id=dataset_id,
            points=share_array(pts),
            weights=share_array(w) if w is not None else None,
            digest=digest,
        )
        self._datasets[dataset_id] = ds
        self.ledger.count("datasets_registered")
        return self._dataset_info(ds)

    async def register_manifest(
        self,
        manifest: str,
        dataset_id: str | None = None,
    ) -> dict:
        """Register a sharded on-disk dataset without shipping its bytes.

        The client sends only the manifest path (server-visible filesystem);
        the server streams the shards into its shared segments one shard at
        a time, so registration peaks at O(shard) extra memory regardless of
        dataset size.  Idempotent like :meth:`register_dataset`; the digest
        is the manifest digest (prefixed ``sharded:``), so re-registering
        the same directory under the same id is a rehit.
        """
        self._ensure_open()
        return self._register_manifest_sync(manifest, dataset_id)

    def _register_manifest_sync(self, manifest, dataset_id=None) -> dict:
        from repro.io.sharded import ShardedDataset

        try:
            src = ShardedDataset(manifest)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"cannot open sharded dataset {manifest!r}: {exc}")
        if src.dim not in (2, 3):
            raise ServiceError(f"points must be (n, 2|3), got dim={src.dim}")
        digest = f"sharded:{src.digest}"
        if dataset_id is None:
            dataset_id = f"ds-{src.digest[:12]}"
        existing = self._datasets.get(dataset_id)
        if existing is not None:
            if existing.digest != digest:
                raise ServiceError(
                    f"dataset id {dataset_id!r} is already registered with different data"
                )
            self.ledger.count("dataset_rehits")
            return self._dataset_info(existing)
        points = share_array_from_rows(
            (tile for _, tile, _, _ in src.iter_tiles()), (src.n, src.dim), np.float64
        )
        weights = None
        if src.has_weights:
            try:
                weights = share_array_from_rows(
                    (w for _, _, w, _ in src.iter_tiles()), (src.n,), np.float64
                )
            except Exception:
                unlink_array(points)
                raise
        ds = _Dataset(
            dataset_id=dataset_id,
            points=points,
            weights=weights,
            digest=digest,
        )
        self._datasets[dataset_id] = ds
        self.ledger.count("datasets_registered")
        return self._dataset_info(ds)

    @staticmethod
    def _dataset_info(ds: _Dataset) -> dict:
        return {
            "dataset_id": ds.dataset_id,
            "digest": ds.digest,
            "n": int(ds.points.shape[0]),
            "dim": int(ds.points.shape[1]),
        }

    def _dataset(self, dataset_id: str) -> _Dataset:
        ds = self._datasets.get(dataset_id)
        if ds is None:
            raise ServiceError(f"unknown dataset {dataset_id!r}; register it first")
        return ds

    def _warm_state(
        self, points: np.ndarray, k: int, sfc_order: np.ndarray | None,
        workspace: SweepWorkspace | None,
    ) -> tuple[np.ndarray | None, SweepWorkspace | None]:
        """(Re)build the (sfc_order, workspace) pair for one point set + k."""
        cfg = self.config
        order = sfc_order
        if order is None and (cfg.sfc_sort or cfg.seeding == "sfc"):
            order = compute_sfc_order(points, cfg)
        if int(k) == 1:
            return order, None  # k == 1 short-circuits before any sweep
        work = points[order] if (cfg.sfc_sort and order is not None) else points
        if workspace is None or not workspace.matches(work, cfg, k):
            workspace = SweepWorkspace(np.ascontiguousarray(work), cfg, int(k))
            self.ledger.count("workspaces_built")
        return order, workspace

    # -- one-shot partitioning (coalesced + batched + cached) ----------------

    async def partition(
        self,
        dataset_id: str,
        k: int,
        epsilon: float = 0.03,
        seed: int = 0,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """One-shot ``Geographer.partition`` over a registered dataset.

        ``weights`` overrides the dataset's registered weights for this
        request only.  Concurrent identical requests coalesce onto a single
        computation (single-flight); concurrent distinct requests against
        one dataset queue on the dataset lock and run back-to-back on its
        warm workspace (one fused pass per queue drain, counted under
        ``batched_requests``).  Results are cached in the LRU keyed on
        ``(data_digest, k, epsilon, weights_hash, seed)``.

        Cache hits and coalesced joins bypass admission control (they cost
        no compute); everything else takes a compute slot, passes the
        dataset's circuit breaker, and runs supervised.
        """
        self._ensure_open()
        ds = self._dataset(dataset_id)
        eff_w = ds.weights if weights is None else np.ascontiguousarray(weights, dtype=np.float64)
        key = (ds.digest, int(k), float(epsilon), weights_hash(eff_w), int(seed))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        pending = self._inflight.get(key)
        if pending is not None:
            self.ledger.count("coalesced_requests")
            return await asyncio.shield(pending)
        breaker = self._breaker(ds.dataset_id)
        breaker.allow()
        future = asyncio.get_running_loop().create_future()
        # a lone failed request must not warn about an unretrieved exception
        future.add_done_callback(lambda f: f.cancelled() or f.exception())
        self._inflight[key] = future
        try:
            async with self._admission.slot():
                if ds.lock.locked():
                    self.ledger.count("batched_requests")
                async with ds.lock:
                    order, ws = self._warm_state(
                        ds.points, k, ds.sfc_order, ds.workspaces.get(int(k))
                    )
                    ds.sfc_order = order
                    if ws is not None:
                        ds.workspaces[int(k)] = ws
                    try:
                        result = await self._supervisor.run(
                            lambda: GeographerPartitioner(
                                config=self.config, workspace=ws, sfc_order=order
                            ).partition(ds.points, int(k), eff_w, epsilon, rng=int(seed)),
                            label=f"partition:{ds.dataset_id}",
                        )
                    except (ComputeFailed, ComputeTimeout):
                        # the abandoned/crashed compute may have left the warm
                        # workspace mid-mutation; rebuild it next request
                        ds.workspaces.pop(int(k), None)
                        breaker.record_failure()
                        raise
                    except asyncio.CancelledError:
                        ds.workspaces.pop(int(k), None)
                        raise
            breaker.record_success()
            self.cache.put(key, result)
            self.ledger.count("requests_served")
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._inflight.pop(key, None)

    # -- sessions ------------------------------------------------------------

    async def open_session(
        self, dataset_id: str, k: int, epsilon: float = 0.03, seed: int = 0
    ) -> dict:
        """Open a repartitioning session over a registered dataset.

        The first :meth:`repartition` call runs cold; each later call
        warm-starts from the session's previous centers.  Step ``i`` runs
        with ``rng = seed + i``.  Returns ``{"session_id", ...}``.
        """
        self._ensure_open()
        ds = self._dataset(dataset_id)
        session_id = f"sess-{uuid.uuid4().hex[:12]}"
        sess = _Session(
            session_id=session_id,
            dataset_id=ds.dataset_id,
            k=int(k),
            epsilon=float(epsilon),
            seed=int(seed),
            store=self._session_store(session_id),
        )
        self._sessions[session_id] = sess
        self.ledger.count("sessions_opened")
        return {"session_id": session_id, "dataset_id": ds.dataset_id, "k": sess.k,
                "epsilon": sess.epsilon, "seed": sess.seed, "step": sess.step}

    def _session_store(self, session_id: str) -> CheckpointStore | None:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir, run_id=session_id, keep=2)

    def _session(self, session_id: str) -> _Session:
        sess = self._sessions.get(session_id)
        if sess is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return sess

    async def repartition(
        self,
        session_id: str,
        weights: np.ndarray | None = None,
        weight_delta: np.ndarray | None = None,
        points: np.ndarray | None = None,
        request_id: str | None = None,
    ) -> PartitionResult:
        """Advance a session one step, warm-started from its previous centers.

        Deltas stream in three forms: ``weights`` replaces the session's
        per-point loads wholesale, ``weight_delta`` adds to the current
        effective loads, and ``points`` replaces the geometry (the adaptive
        refinement case — the session's warm workspace is rebuilt, centers
        still carry over).  With no arguments the step re-runs on unchanged
        inputs.  Step ``i`` uses ``rng = seed + i``; results are
        bit-identical to direct ``GeographerPartitioner`` calls with the
        same inputs, and each step is checkpointed so a restarted server
        continues the sequence bit-identically.

        Nothing commits until the supervised compute succeeds — a crashed,
        hung or deadline-cancelled step leaves the session untouched, so a
        retry recomputes the *same* step bit-identically.  ``request_id``
        makes retries idempotent even across the commit boundary: if the
        session's last committed step carries the same id, the stored
        result replays instead of recomputing (so a retry after a lost
        reply never double-applies a delta).
        """
        self._ensure_open()
        sess = self._session(session_id)
        if (
            request_id is not None
            and sess.last_request is not None
            and sess.last_request[0] == request_id
        ):
            self.ledger.count("idempotent_replays")
            return sess.last_request[1]
        breaker = self._breaker(sess.dataset_id)
        breaker.allow()
        async with self._admission.slot():
            async with sess.lock:
                # the original attempt may have committed while this retry
                # queued on the session lock
                if (
                    request_id is not None
                    and sess.last_request is not None
                    and sess.last_request[0] == request_id
                ):
                    self.ledger.count("idempotent_replays")
                    return sess.last_request[1]
                ds = self._dataset(sess.dataset_id)
                # stage every input mutation; commit only after compute succeeds
                staged_points = None
                if points is not None:
                    pts = np.ascontiguousarray(points, dtype=np.float64)
                    if pts.ndim != 2 or pts.shape[1] not in (2, 3):
                        raise ServiceError(f"points must be (n, 2|3), got shape {pts.shape}")
                    staged_points = share_array(pts)
                try:
                    eff_pts = staged_points if staged_points is not None else (
                        sess.points if sess.points is not None else ds.points
                    )
                    n = eff_pts.shape[0]
                    staged_weights = sess.weights
                    weights_changed = False
                    if weights is not None:
                        w = np.ascontiguousarray(weights, dtype=np.float64)
                        if w.shape != (n,):
                            raise ServiceError(
                                f"weights shape {w.shape} does not match {n} points"
                            )
                        staged_weights, weights_changed = w, True
                    elif weight_delta is not None:
                        delta = np.ascontiguousarray(weight_delta, dtype=np.float64)
                        if delta.shape != (n,):
                            raise ServiceError(
                                f"weight_delta shape {delta.shape} does not match {n} points"
                            )
                        base = sess.weights
                        if base is None:
                            base = ds.weights if (
                                ds.weights is not None and ds.weights.shape == (n,)
                            ) else np.ones(n)
                        staged_weights, weights_changed = base + delta, True
                    eff_w = staged_weights
                    if eff_w is None and ds.weights is not None and ds.weights.shape == (n,):
                        eff_w = ds.weights

                    if staged_points is not None:
                        order, ws = self._warm_state(eff_pts, sess.k, None, None)
                    else:
                        order, ws = self._warm_state(
                            eff_pts, sess.k, sess.sfc_order, sess.workspace
                        )
                    rng = sess.seed + sess.step
                    previous = sess.previous

                    def compute():
                        partitioner = GeographerPartitioner(
                            config=self.config, workspace=ws, sfc_order=order
                        )
                        if previous is not None:
                            return partitioner.repartition(
                                previous, eff_pts, sess.k, eff_w, sess.epsilon, rng=rng
                            )
                        return partitioner.partition(eff_pts, sess.k, eff_w, sess.epsilon, rng=rng)

                    try:
                        result = await self._supervisor.run(
                            compute, label=f"repartition:{sess.session_id}"
                        )
                    except (ComputeFailed, ComputeTimeout):
                        breaker.record_failure()
                        self._restore_session(sess)
                        raise
                    except asyncio.CancelledError:
                        # the orphaned thread may still be sweeping on the
                        # session workspace; drop it so the retry rebuilds
                        sess.workspace = None
                        raise
                except BaseException:
                    if staged_points is not None:
                        unlink_array(staged_points)
                    raise

                # -- commit (no awaits: atomic wrt cancellation) -------------
                if staged_points is not None:
                    if sess.points is not None:
                        unlink_array(sess.points)
                    sess.points = staged_points
                if weights_changed:
                    sess.weights = staged_weights
                sess.sfc_order, sess.workspace = order, ws
                breaker.record_success()
                sess.previous = result
                sess.step += 1
                if request_id is not None:
                    sess.last_request = (request_id, result)
                self.ledger.count("repartitions_served")
                if sess.store is not None:
                    self._checkpoint_session(sess, eff_pts, eff_w)
                return result

    def _checkpoint_session(self, sess: _Session, eff_pts, eff_w) -> None:
        """Snapshot everything a restarted server needs to continue the session."""
        result = sess.previous
        arrays = {
            "points": np.asarray(eff_pts),
            "assignment": np.asarray(result.assignment),
            "centers": np.asarray(result.centers),
            "block_weights": np.asarray(result.block_weights),
            "target_weights": np.asarray(result.target_weights),
        }
        if eff_w is not None:
            arrays["weights"] = np.asarray(eff_w)
        meta = {
            "kind": SESSION_CHECKPOINT_KIND,
            "session_id": sess.session_id,
            "dataset_id": sess.dataset_id,
            "config_digest": self.config.digest(),
            "k": sess.k,
            "epsilon": sess.epsilon,
            "seed": sess.seed,
            "step": sess.step,
            "imbalance": float(result.imbalance),
            "private_points": sess.points is not None,
        }
        sess.store.save(arrays, meta, faults=self.faults)
        self.ledger.count("checkpoints_saved")

    def _result_from_snapshot(self, arrays: dict, meta: dict) -> PartitionResult:
        return PartitionResult(
            assignment=np.ascontiguousarray(arrays["assignment"], dtype=np.int64),
            k=int(meta["k"]),
            block_weights=np.asarray(arrays["block_weights"], dtype=np.float64),
            target_weights=np.asarray(arrays["target_weights"], dtype=np.float64),
            imbalance=float(meta["imbalance"]),
            epsilon=float(meta["epsilon"]),
            tool="Geographer",
            centers=np.asarray(arrays["centers"], dtype=np.float64),
        )

    def _restore_session(self, sess: _Session) -> None:
        """Re-anchor a session on its ``run_id`` checkpoint after a compute failure.

        The warm workspace is dropped unconditionally (the dead compute may
        have left it mid-mutation).  In-memory step state only mutates on
        commit, so normally it already matches the newest checkpoint — but
        if they diverge (e.g. the failure interrupted a checkpoint save),
        the checkpoint wins: previous result, weights and step are reloaded
        so the continued sequence stays bit-identical to an uninterrupted
        run.
        """
        sess.workspace = None
        sess.sfc_order = None
        if sess.store is None:
            return
        try:
            arrays, meta = sess.store.load()
            validate_meta(meta, kind=SESSION_CHECKPOINT_KIND,
                          config_digest=self.config.digest())
        except Exception:
            return  # no (valid) checkpoint yet — in-memory state is authoritative
        if meta.get("session_id") != sess.session_id:
            return
        if int(meta["step"]) != sess.step:
            sess.step = int(meta["step"])
            sess.previous = self._result_from_snapshot(arrays, meta)
            if "weights" in arrays:
                sess.weights = np.ascontiguousarray(arrays["weights"], dtype=np.float64)
            sess.last_request = None
        self.ledger.count("sessions_restored")
        self.ledger.record_event(
            "session_restored", session_id=sess.session_id, step=sess.step
        )

    def _resume_sessions(self) -> None:
        """Rebuild sessions (and their backing datasets) from checkpoints.

        Called at construction when a checkpoint root is configured.  Each
        ``run_id`` subdirectory holding a valid ``service-session``
        checkpoint becomes a live session whose next step runs with the
        exact inputs, centers and rng the killed server would have used —
        so the continued sequence is bit-identical.
        """
        root = self.checkpoint_dir
        if not os.path.isdir(root):
            return
        for name in sorted(os.listdir(root)):
            sub = os.path.join(root, name)
            if not os.path.isdir(sub):
                continue
            store = CheckpointStore(root, run_id=name, keep=2)
            try:
                arrays, meta = store.load()
                validate_meta(meta, kind=SESSION_CHECKPOINT_KIND,
                              config_digest=self.config.digest())
            except Exception:
                continue  # not a session of this service/config; leave it alone
            session_id = meta["session_id"]
            pts = np.ascontiguousarray(arrays["points"], dtype=np.float64)
            w = None
            if "weights" in arrays:
                w = np.ascontiguousarray(arrays["weights"], dtype=np.float64)
            private = bool(meta.get("private_points"))
            dataset_id = meta["dataset_id"]
            if dataset_id not in self._datasets and not private:
                self._register_dataset_sync(pts, w, dataset_id=dataset_id)
            sess = _Session(
                session_id=session_id,
                dataset_id=dataset_id,
                k=int(meta["k"]),
                epsilon=float(meta["epsilon"]),
                seed=int(meta["seed"]),
                step=int(meta["step"]),
                store=store,
            )
            if private:
                sess.points = share_array(pts)
                if dataset_id not in self._datasets:
                    # the dataset itself was not checkpointed; register the
                    # session's geometry so dataset lookups keep working
                    self._register_dataset_sync(pts, w, dataset_id=dataset_id)
            if w is not None:
                sess.weights = w
            sess.previous = self._result_from_snapshot(arrays, meta)
            self._sessions[session_id] = sess
            self.ledger.count("sessions_resumed")

    async def close_session(self, session_id: str, drop_checkpoints: bool = False) -> dict:
        """End a session, releasing its private segment (checkpoints kept)."""
        sess = self._session(session_id)
        async with sess.lock:
            del self._sessions[session_id]
            if sess.points is not None:
                unlink_array(sess.points)
                sess.points = None
            if drop_checkpoints and sess.store is not None:
                for path in sess.store.candidates():
                    path.unlink(missing_ok=True)
                try:
                    sess.store.directory.rmdir()
                except OSError:
                    pass
        self.ledger.count("sessions_closed")
        return {"session_id": session_id, "steps": sess.step}

    # -- introspection + lifecycle -------------------------------------------

    async def stats(self) -> dict:
        """Counters, cache stats and live object counts (JSON-serialisable)."""
        return {
            "datasets": len(self._datasets),
            "sessions": len(self._sessions),
            "inflight": len(self._inflight),
            "cache": self.cache.stats,
            "counters": dict(self.ledger.counters),
            "config_digest": self.config.digest(),
        }

    async def health(self) -> dict:
        """Readiness snapshot: load, breaker states, recovery counts.

        Cheap by construction (no locks, no compute) so monitors can poll it
        while the service is saturated.
        """
        c = self.ledger.counters
        return {
            "status": "draining" if self._closed else "ok",
            "queue_depth": self._admission.queued,
            "inflight": self._admission.inflight,
            "max_inflight": self._admission.max_inflight,
            "max_queue": self._admission.max_queue,
            "requests_shed": c.get("requests_shed", 0),
            "breakers": {name: br.describe() for name, br in self._breakers.items()},
            "compute_respawns": self._supervisor.respawns,
            "sessions_restored": c.get("sessions_restored", 0),
            "compute_timeout": self._supervisor.timeout,
            "avg_compute_ms": (
                None if self._supervisor.avg_compute_s is None
                else self._supervisor.avg_compute_s * 1e3
            ),
            "datasets": len(self._datasets),
            "sessions": len(self._sessions),
        }

    async def drain(self, grace: float | None = None) -> None:
        """Finish in-flight work, then release every shared segment.

        ``grace`` bounds the wait: queued (not yet admitted) requests fail
        immediately with ``shutting_down``; admitted requests get up to
        ``grace`` seconds to finish (their sessions are checkpoint-consistent
        either way — commits are atomic); whatever still runs afterwards is
        abandoned.  ``None`` waits indefinitely.  After drain the service
        rejects new requests; ``assert_no_leaks`` passes because every
        ``share_array`` segment is unlinked here.
        """
        self._closed = True
        self._admission.shed_waiters(ShuttingDown("service is draining/closed"))
        loop = asyncio.get_running_loop()
        deadline = None if grace is None else loop.time() + float(grace)
        while self._admission.inflight > 0:
            if deadline is not None and loop.time() >= deadline:
                break
            await asyncio.sleep(0.02)
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            waiter = asyncio.gather(*pending, return_exceptions=True)
            if deadline is None:
                await waiter
            else:
                try:
                    await asyncio.wait_for(waiter, max(0.01, deadline - loop.time()))
                except asyncio.TimeoutError:
                    pass
        drained_clean = self._admission.inflight == 0
        # abandoned (deadline/timeout) computes may still be sweeping over the
        # shared segments below; unmapping under them would segfault the
        # server.  Wait them out; if one outlives the grace, leak its
        # segments instead (the resource tracker reclaims them at exit).
        quiesce_grace = None if deadline is None else max(0.0, deadline - loop.time())
        quiesced = await loop.run_in_executor(
            None, self._supervisor.quiesce, quiesce_grace
        )
        if not quiesced:
            self.ledger.record_event("drain_leaked_segments", reason="wedged compute")
            self._sessions.clear()
            self._datasets.clear()
            self.cache.clear()
            self._supervisor.shutdown(wait=False)
            return
        for sess in self._sessions.values():
            if sess.points is not None:
                unlink_array(sess.points)
                sess.points = None
        self._sessions.clear()
        for ds in self._datasets.values():
            unlink_array(ds.points)
            if ds.weights is not None:
                unlink_array(ds.weights)
            ds.workspaces.clear()
        self._datasets.clear()
        self.cache.clear()
        # a wedged compute past the hard deadline must not block shutdown
        self._supervisor.shutdown(wait=drained_clean)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ShuttingDown("service is draining/closed")


# -- the socket front-end -----------------------------------------------------


class PartitionServer:
    """Asyncio unix-socket transport around one :class:`PartitionService`.

    One frame in, one frame out per request; concurrent requests multiplex
    through the event loop (which is what makes coalescing and batching
    observable across client processes).  Requests may carry ``deadline_ms``
    — the dispatch is cancelled at the deadline and answered with a
    structured ``deadline_exceeded`` error (service state is cancellation-
    safe: nothing commits on a cancelled request).  ``shutdown`` drains the
    service under ``drain_grace`` — every shared segment is released before
    the loop exits.
    """

    #: op name -> service coroutine attribute
    OPS = (
        "register_dataset",
        "register_manifest",
        "partition",
        "open_session",
        "repartition",
        "close_session",
        "stats",
        "health",
    )

    def __init__(
        self,
        service: PartitionService,
        socket_path: str | os.PathLike,
        drain_grace: float | None = None,
    ) -> None:
        self.service = service
        self.socket_path = os.fspath(socket_path)
        self.drain_grace = drain_grace
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(self._handle, path=self.socket_path)

    async def serve_until_shutdown(self) -> None:
        """Serve requests until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        """Stop accepting, drain the service, release all shared segments."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain(self.drain_grace)
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break  # clean disconnect (EOF / truncated frame)
                except ProtocolError as exc:
                    # oversized header or garbage payload: the stream cannot
                    # be re-synchronised — answer structurally, then drop it
                    with contextlib.suppress(Exception):
                        await write_frame(writer, error_payload(exc))
                    break
                response = await self._dispatch(request)
                await write_frame(writer, response)
                if isinstance(request, dict) and request.get("op") == "shutdown":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            return error_payload(ServiceError("request must be a dict with an 'op' key"))
        op = request["op"]
        if op == "ping":
            return {"status": "ok", "value": "pong"}
        if op == "shutdown":
            self.request_shutdown()
            return {"status": "ok", "value": "draining"}
        if op not in self.OPS:
            return error_payload(ServiceError(f"unknown op {op!r}"))
        deadline_ms = request.get("deadline_ms")
        kwargs = {key: val for key, val in request.items()
                  if key not in ("op", "deadline_ms")}
        try:
            coro = getattr(self.service, op)(**kwargs)
            if deadline_ms is not None:
                value = await asyncio.wait_for(
                    coro, max(0.001, float(deadline_ms) / 1000.0)
                )
            else:
                value = await coro
            return {"status": "ok", "value": value}
        except asyncio.TimeoutError:
            return error_payload(DeadlineExceeded(
                f"request exceeded its {deadline_ms} ms deadline"
            ))
        except Exception as exc:
            return error_payload(exc)


async def serve(
    socket_path: str | os.PathLike,
    config: BalancedKMeansConfig | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    cache_capacity: int = 128,
    compute_threads: int = 1,
    max_inflight: int | None = None,
    max_queue: int | None = 256,
    compute_timeout: float | None = None,
    breaker_threshold: int = 3,
    breaker_reset: float = 5.0,
    drain_grace: float | None = 10.0,
    ready_callback=None,
) -> None:
    """Run a :class:`PartitionServer` until it is asked to shut down.

    The entry point behind ``repro serve``; installs SIGTERM/SIGINT handlers
    so an external kill still drains gracefully — in-flight requests get up
    to ``drain_grace`` seconds to finish or checkpoint while new requests
    are rejected with ``shutting_down`` (checkpoints make even SIGKILL
    recoverable).  A :class:`~repro.runtime.faults.FaultPlan` from the
    ``REPRO_FAULTS`` environment variable is executed against the compute
    path (chaos testing against a live server).  ``ready_callback`` fires
    once the socket listens.
    """
    import signal

    faults = None
    spec = os.environ.get("REPRO_FAULTS")
    if spec:
        faults = FaultPlan.parse(spec)
    service = PartitionService(
        config=config,
        checkpoint_dir=checkpoint_dir,
        cache_capacity=cache_capacity,
        compute_threads=compute_threads,
        max_inflight=max_inflight,
        max_queue=max_queue,
        compute_timeout=compute_timeout,
        breaker_threshold=breaker_threshold,
        breaker_reset=breaker_reset,
        faults=faults,
    )
    server = PartitionServer(service, socket_path, drain_grace=drain_grace)
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
    if ready_callback is not None:
        ready_callback()
    await server.serve_until_shutdown()
