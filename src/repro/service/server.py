"""The partitioning service core and its asyncio socket front-end.

:class:`PartitionService` is the in-process heart — an asyncio object whose
coroutines implement the whole feature set (datasets in shared memory, warm
sessions, coalescing/batching, the LRU cache, per-session checkpoints,
graceful drain).  :class:`PartitionServer` is a thin transport: it exposes
those coroutines over length-prefixed pickle frames on a unix socket
(:mod:`repro.service.protocol`) so many client processes can share one warm
server.  Keeping the core transport-free makes every behaviour testable
without sockets.

Determinism contract: every result is **bit-identical** to calling
``GeographerPartitioner().partition(...)`` / ``.repartition(...)`` directly
with the same inputs.  Warm workspaces only skip redundant cache builds
(never change sweep results — the PR-2/4 property), the result cache keys on
every determinism-relevant input, coalescing shares one computation between
identical requests, and session step ``i`` always runs with
``rng = seed + i`` so a resumed server replays the exact rng sequence.
"""

from __future__ import annotations

import asyncio
import os
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.balanced_kmeans import compute_sfc_order
from repro.core.config import BalancedKMeansConfig
from repro.core.kernels import SweepWorkspace
from repro.partitioners.geographer import GeographerPartitioner
from repro.partitioners.result import PartitionResult
from repro.runtime.checkpoint import CheckpointStore, data_digest, sanitize_run_id, validate_meta
from repro.runtime.comm import CostLedger
from repro.runtime.procomm import share_array, unlink_array
from repro.service.cache import LRUResultCache, weights_hash
from repro.service.protocol import read_frame, write_frame

__all__ = ["PartitionServer", "PartitionService", "ServiceError", "SESSION_CHECKPOINT_KIND"]

#: ``kind`` tag of per-session checkpoints (rejects resuming foreign files).
SESSION_CHECKPOINT_KIND = "service-session"


class ServiceError(RuntimeError):
    """A request the service cannot honour (unknown ids, bad shapes, closed)."""


@dataclass
class _Dataset:
    dataset_id: str
    points: np.ndarray  # SharedArray view over a server-owned segment
    weights: np.ndarray | None  # ditto, or None for unit weights
    digest: str
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    sfc_order: np.ndarray | None = None
    workspaces: dict[int, SweepWorkspace] = field(default_factory=dict)


@dataclass
class _Session:
    session_id: str
    dataset_id: str
    k: int
    epsilon: float
    seed: int
    step: int = 0
    previous: PartitionResult | None = None
    # session-private geometry (None -> the dataset's shared points) and the
    # session's current weights (None -> the dataset's registered weights)
    points: np.ndarray | None = None
    weights: np.ndarray | None = None
    sfc_order: np.ndarray | None = None
    workspace: SweepWorkspace | None = None
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    store: CheckpointStore | None = None


class PartitionService:
    """Long-lived partitioning core: warm state + caching over Geographer.

    Parameters
    ----------
    config:
        The :class:`BalancedKMeansConfig` every request runs under (the
        per-request ``epsilon`` overrides the config's, exactly like
        :class:`GeographerPartitioner`); also selects the kernel backend
        the warm workspaces are built for.
    checkpoint_dir:
        Root directory for per-session checkpoints — each session writes
        into its own ``run_id`` namespace (the concurrency-safe layout of
        :class:`CheckpointStore`).  On construction, existing session
        checkpoints under this root are loaded and their sessions (and
        backing datasets) rebuilt, which is how a SIGKILLed server resumes.
        ``None`` disables checkpointing.
    cache_capacity:
        LRU result-cache entries (0 disables caching).
    compute_threads:
        Executor threads for the numeric work.  The default 1 serialises
        all sweeps (per-dataset locks already serialise same-dataset work);
        raise it to overlap distinct datasets.
    """

    def __init__(
        self,
        config: BalancedKMeansConfig | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        cache_capacity: int = 128,
        compute_threads: int = 1,
    ) -> None:
        self.config = config or BalancedKMeansConfig()
        self.checkpoint_dir = os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        self.ledger = CostLedger()
        self.cache = LRUResultCache(cache_capacity, ledger=self.ledger)
        self._datasets: dict[str, _Dataset] = {}
        self._sessions: dict[str, _Session] = {}
        self._inflight: dict[tuple, asyncio.Future] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(compute_threads)), thread_name_prefix="repro-service"
        )
        self._closed = False
        if self.checkpoint_dir is not None:
            self._resume_sessions()

    # -- datasets ------------------------------------------------------------

    async def register_dataset(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        dataset_id: str | None = None,
    ) -> dict:
        """Copy ``points``/``weights`` into server-owned shared segments.

        Idempotent: re-registering identical data under the same id (or the
        digest-derived default id) returns the existing registration, so
        clients may blindly register on connect.  Returns
        ``{"dataset_id", "digest", "n", "dim"}``.
        """
        self._ensure_open()
        return self._register_dataset_sync(points, weights, dataset_id)

    def _register_dataset_sync(self, points, weights, dataset_id=None) -> dict:
        pts = np.ascontiguousarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] not in (2, 3):
            raise ServiceError(f"points must be (n, 2|3), got shape {pts.shape}")
        w = None
        if weights is not None:
            w = np.ascontiguousarray(weights, dtype=np.float64)
            if w.shape != (pts.shape[0],):
                raise ServiceError(f"weights shape {w.shape} does not match {pts.shape[0]} points")
        digest = data_digest(pts, *( [w] if w is not None else [] ))
        if dataset_id is None:
            dataset_id = f"ds-{digest[:12]}"
        existing = self._datasets.get(dataset_id)
        if existing is not None:
            if existing.digest != digest:
                raise ServiceError(
                    f"dataset id {dataset_id!r} is already registered with different data"
                )
            self.ledger.count("dataset_rehits")
            return self._dataset_info(existing)
        ds = _Dataset(
            dataset_id=dataset_id,
            points=share_array(pts),
            weights=share_array(w) if w is not None else None,
            digest=digest,
        )
        self._datasets[dataset_id] = ds
        self.ledger.count("datasets_registered")
        return self._dataset_info(ds)

    @staticmethod
    def _dataset_info(ds: _Dataset) -> dict:
        return {
            "dataset_id": ds.dataset_id,
            "digest": ds.digest,
            "n": int(ds.points.shape[0]),
            "dim": int(ds.points.shape[1]),
        }

    def _dataset(self, dataset_id: str) -> _Dataset:
        ds = self._datasets.get(dataset_id)
        if ds is None:
            raise ServiceError(f"unknown dataset {dataset_id!r}; register it first")
        return ds

    def _warm_state(
        self, points: np.ndarray, k: int, sfc_order: np.ndarray | None,
        workspace: SweepWorkspace | None,
    ) -> tuple[np.ndarray | None, SweepWorkspace | None]:
        """(Re)build the (sfc_order, workspace) pair for one point set + k."""
        cfg = self.config
        order = sfc_order
        if order is None and (cfg.sfc_sort or cfg.seeding == "sfc"):
            order = compute_sfc_order(points, cfg)
        if int(k) == 1:
            return order, None  # k == 1 short-circuits before any sweep
        work = points[order] if (cfg.sfc_sort and order is not None) else points
        if workspace is None or not workspace.matches(work, cfg, k):
            workspace = SweepWorkspace(np.ascontiguousarray(work), cfg, int(k))
            self.ledger.count("workspaces_built")
        return order, workspace

    # -- one-shot partitioning (coalesced + batched + cached) ----------------

    async def partition(
        self,
        dataset_id: str,
        k: int,
        epsilon: float = 0.03,
        seed: int = 0,
        weights: np.ndarray | None = None,
    ) -> PartitionResult:
        """One-shot ``Geographer.partition`` over a registered dataset.

        ``weights`` overrides the dataset's registered weights for this
        request only.  Concurrent identical requests coalesce onto a single
        computation (single-flight); concurrent distinct requests against
        one dataset queue on the dataset lock and run back-to-back on its
        warm workspace (one fused pass per queue drain, counted under
        ``batched_requests``).  Results are cached in the LRU keyed on
        ``(data_digest, k, epsilon, weights_hash, seed)``.
        """
        self._ensure_open()
        ds = self._dataset(dataset_id)
        eff_w = ds.weights if weights is None else np.ascontiguousarray(weights, dtype=np.float64)
        key = (ds.digest, int(k), float(epsilon), weights_hash(eff_w), int(seed))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        pending = self._inflight.get(key)
        if pending is not None:
            self.ledger.count("coalesced_requests")
            return await asyncio.shield(pending)
        future = asyncio.get_running_loop().create_future()
        # a lone failed request must not warn about an unretrieved exception
        future.add_done_callback(lambda f: f.cancelled() or f.exception())
        self._inflight[key] = future
        try:
            if ds.lock.locked():
                self.ledger.count("batched_requests")
            async with ds.lock:
                order, ws = self._warm_state(ds.points, k, ds.sfc_order, ds.workspaces.get(int(k)))
                ds.sfc_order = order
                if ws is not None:
                    ds.workspaces[int(k)] = ws
                result = await self._run(
                    lambda: GeographerPartitioner(
                        config=self.config, workspace=ws, sfc_order=order
                    ).partition(ds.points, int(k), eff_w, epsilon, rng=int(seed))
                )
            self.cache.put(key, result)
            self.ledger.count("requests_served")
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            raise
        finally:
            self._inflight.pop(key, None)

    async def _run(self, fn):
        return await asyncio.get_running_loop().run_in_executor(self._pool, fn)

    # -- sessions ------------------------------------------------------------

    async def open_session(
        self, dataset_id: str, k: int, epsilon: float = 0.03, seed: int = 0
    ) -> dict:
        """Open a repartitioning session over a registered dataset.

        The first :meth:`repartition` call runs cold; each later call
        warm-starts from the session's previous centers.  Step ``i`` runs
        with ``rng = seed + i``.  Returns ``{"session_id", ...}``.
        """
        self._ensure_open()
        ds = self._dataset(dataset_id)
        session_id = f"sess-{uuid.uuid4().hex[:12]}"
        sess = _Session(
            session_id=session_id,
            dataset_id=ds.dataset_id,
            k=int(k),
            epsilon=float(epsilon),
            seed=int(seed),
            store=self._session_store(session_id),
        )
        self._sessions[session_id] = sess
        self.ledger.count("sessions_opened")
        return {"session_id": session_id, "dataset_id": ds.dataset_id, "k": sess.k,
                "epsilon": sess.epsilon, "seed": sess.seed, "step": sess.step}

    def _session_store(self, session_id: str) -> CheckpointStore | None:
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir, run_id=session_id, keep=2)

    def _session(self, session_id: str) -> _Session:
        sess = self._sessions.get(session_id)
        if sess is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return sess

    async def repartition(
        self,
        session_id: str,
        weights: np.ndarray | None = None,
        weight_delta: np.ndarray | None = None,
        points: np.ndarray | None = None,
    ) -> PartitionResult:
        """Advance a session one step, warm-started from its previous centers.

        Deltas stream in three forms: ``weights`` replaces the session's
        per-point loads wholesale, ``weight_delta`` adds to the current
        effective loads, and ``points`` replaces the geometry (the adaptive
        refinement case — the session's warm workspace is rebuilt, centers
        still carry over).  With no arguments the step re-runs on unchanged
        inputs.  Step ``i`` uses ``rng = seed + i``; results are
        bit-identical to direct ``GeographerPartitioner`` calls with the
        same inputs, and each step is checkpointed so a restarted server
        continues the sequence bit-identically.
        """
        self._ensure_open()
        sess = self._session(session_id)
        async with sess.lock:
            ds = self._dataset(sess.dataset_id)
            if points is not None:
                pts = np.ascontiguousarray(points, dtype=np.float64)
                if pts.ndim != 2 or pts.shape[1] not in (2, 3):
                    raise ServiceError(f"points must be (n, 2|3), got shape {pts.shape}")
                if sess.points is not None:
                    unlink_array(sess.points)
                sess.points = share_array(pts)
                sess.sfc_order = None
                sess.workspace = None
            eff_pts = sess.points if sess.points is not None else ds.points
            n = eff_pts.shape[0]
            if weights is not None:
                w = np.ascontiguousarray(weights, dtype=np.float64)
                if w.shape != (n,):
                    raise ServiceError(f"weights shape {w.shape} does not match {n} points")
                sess.weights = w
            elif weight_delta is not None:
                delta = np.ascontiguousarray(weight_delta, dtype=np.float64)
                if delta.shape != (n,):
                    raise ServiceError(f"weight_delta shape {delta.shape} does not match {n} points")
                base = sess.weights
                if base is None:
                    base = ds.weights if (ds.weights is not None and ds.weights.shape == (n,)) \
                        else np.ones(n)
                sess.weights = base + delta
            eff_w = sess.weights
            if eff_w is None and ds.weights is not None and ds.weights.shape == (n,):
                eff_w = ds.weights

            sess.sfc_order, sess.workspace = self._warm_state(
                eff_pts, sess.k, sess.sfc_order, sess.workspace
            )
            rng = sess.seed + sess.step
            previous = sess.previous
            order, ws = sess.sfc_order, sess.workspace

            def compute():
                partitioner = GeographerPartitioner(
                    config=self.config, workspace=ws, sfc_order=order
                )
                if previous is not None:
                    return partitioner.repartition(
                        previous, eff_pts, sess.k, eff_w, sess.epsilon, rng=rng
                    )
                return partitioner.partition(eff_pts, sess.k, eff_w, sess.epsilon, rng=rng)

            result = await self._run(compute)
            sess.previous = result
            sess.step += 1
            self.ledger.count("repartitions_served")
            if sess.store is not None:
                await self._run(lambda: self._checkpoint_session(sess, eff_pts, eff_w))
            return result

    def _checkpoint_session(self, sess: _Session, eff_pts, eff_w) -> None:
        """Snapshot everything a restarted server needs to continue the session."""
        result = sess.previous
        arrays = {
            "points": np.asarray(eff_pts),
            "assignment": np.asarray(result.assignment),
            "centers": np.asarray(result.centers),
            "block_weights": np.asarray(result.block_weights),
            "target_weights": np.asarray(result.target_weights),
        }
        if eff_w is not None:
            arrays["weights"] = np.asarray(eff_w)
        meta = {
            "kind": SESSION_CHECKPOINT_KIND,
            "session_id": sess.session_id,
            "dataset_id": sess.dataset_id,
            "config_digest": self.config.digest(),
            "k": sess.k,
            "epsilon": sess.epsilon,
            "seed": sess.seed,
            "step": sess.step,
            "imbalance": float(result.imbalance),
            "private_points": sess.points is not None,
        }
        sess.store.save(arrays, meta)
        self.ledger.count("checkpoints_saved")

    def _resume_sessions(self) -> None:
        """Rebuild sessions (and their backing datasets) from checkpoints.

        Called at construction when a checkpoint root is configured.  Each
        ``run_id`` subdirectory holding a valid ``service-session``
        checkpoint becomes a live session whose next step runs with the
        exact inputs, centers and rng the killed server would have used —
        so the continued sequence is bit-identical.
        """
        root = self.checkpoint_dir
        if not os.path.isdir(root):
            return
        for name in sorted(os.listdir(root)):
            sub = os.path.join(root, name)
            if not os.path.isdir(sub):
                continue
            store = CheckpointStore(root, run_id=name, keep=2)
            try:
                arrays, meta = store.load()
                validate_meta(meta, kind=SESSION_CHECKPOINT_KIND,
                              config_digest=self.config.digest())
            except Exception:
                continue  # not a session of this service/config; leave it alone
            session_id = meta["session_id"]
            pts = np.ascontiguousarray(arrays["points"], dtype=np.float64)
            w = None
            if "weights" in arrays:
                w = np.ascontiguousarray(arrays["weights"], dtype=np.float64)
            private = bool(meta.get("private_points"))
            dataset_id = meta["dataset_id"]
            if dataset_id not in self._datasets and not private:
                self._register_dataset_sync(pts, w, dataset_id=dataset_id)
            sess = _Session(
                session_id=session_id,
                dataset_id=dataset_id,
                k=int(meta["k"]),
                epsilon=float(meta["epsilon"]),
                seed=int(meta["seed"]),
                step=int(meta["step"]),
                store=store,
            )
            if private:
                sess.points = share_array(pts)
                if dataset_id not in self._datasets:
                    # the dataset itself was not checkpointed; register the
                    # session's geometry so dataset lookups keep working
                    self._register_dataset_sync(pts, w, dataset_id=dataset_id)
            if w is not None:
                sess.weights = w
            sess.previous = PartitionResult(
                assignment=np.ascontiguousarray(arrays["assignment"], dtype=np.int64),
                k=sess.k,
                block_weights=np.asarray(arrays["block_weights"], dtype=np.float64),
                target_weights=np.asarray(arrays["target_weights"], dtype=np.float64),
                imbalance=float(meta["imbalance"]),
                epsilon=sess.epsilon,
                tool="Geographer",
                centers=np.asarray(arrays["centers"], dtype=np.float64),
            )
            self._sessions[session_id] = sess
            self.ledger.count("sessions_resumed")

    async def close_session(self, session_id: str, drop_checkpoints: bool = False) -> dict:
        """End a session, releasing its private segment (checkpoints kept)."""
        sess = self._session(session_id)
        async with sess.lock:
            del self._sessions[session_id]
            if sess.points is not None:
                unlink_array(sess.points)
                sess.points = None
            if drop_checkpoints and sess.store is not None:
                for path in sess.store.candidates():
                    path.unlink(missing_ok=True)
                try:
                    sess.store.directory.rmdir()
                except OSError:
                    pass
        self.ledger.count("sessions_closed")
        return {"session_id": session_id, "steps": sess.step}

    # -- introspection + lifecycle -------------------------------------------

    async def stats(self) -> dict:
        """Counters, cache stats and live object counts (JSON-serialisable)."""
        return {
            "datasets": len(self._datasets),
            "sessions": len(self._sessions),
            "inflight": len(self._inflight),
            "cache": self.cache.stats,
            "counters": dict(self.ledger.counters),
            "config_digest": self.config.digest(),
        }

    async def drain(self) -> None:
        """Finish in-flight work, then release every shared segment.

        After drain the service rejects new requests; ``assert_no_leaks``
        passes because every ``share_array`` segment is unlinked here.
        """
        self._closed = True
        pending = [f for f in self._inflight.values() if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        for sess in self._sessions.values():
            if sess.points is not None:
                unlink_array(sess.points)
                sess.points = None
        self._sessions.clear()
        for ds in self._datasets.values():
            unlink_array(ds.points)
            if ds.weights is not None:
                unlink_array(ds.weights)
            ds.workspaces.clear()
        self._datasets.clear()
        self.cache.clear()
        self._pool.shutdown(wait=True)

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("service is draining/closed")


# -- the socket front-end -----------------------------------------------------


class PartitionServer:
    """Asyncio unix-socket transport around one :class:`PartitionService`.

    One frame in, one frame out per request; concurrent requests multiplex
    through the event loop (which is what makes coalescing and batching
    observable across client processes).  ``shutdown`` drains the service —
    every shared segment is released before the loop exits.
    """

    #: op name -> service coroutine attribute
    OPS = (
        "register_dataset",
        "partition",
        "open_session",
        "repartition",
        "close_session",
        "stats",
    )

    def __init__(self, service: PartitionService, socket_path: str | os.PathLike) -> None:
        self.service = service
        self.socket_path = os.fspath(socket_path)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> None:
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)
        self._server = await asyncio.start_unix_server(self._handle, path=self.socket_path)

    async def serve_until_shutdown(self) -> None:
        """Serve requests until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        """Stop accepting, drain the service, release all shared segments."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain()
        if os.path.exists(self.socket_path):
            os.unlink(self.socket_path)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                response = await self._dispatch(request)
                await write_frame(writer, response)
                if request.get("op") == "shutdown":
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, request) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            return {"status": "error", "error": "request must be a dict with an 'op' key"}
        op = request["op"]
        if op == "ping":
            return {"status": "ok", "value": "pong"}
        if op == "shutdown":
            self.request_shutdown()
            return {"status": "ok", "value": "draining"}
        if op not in self.OPS:
            return {"status": "error", "error": f"unknown op {op!r}"}
        kwargs = {key: val for key, val in request.items() if key != "op"}
        try:
            value = await getattr(self.service, op)(**kwargs)
            return {"status": "ok", "value": value}
        except Exception as exc:
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}


async def serve(
    socket_path: str | os.PathLike,
    config: BalancedKMeansConfig | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    cache_capacity: int = 128,
    compute_threads: int = 1,
    ready_callback=None,
) -> None:
    """Run a :class:`PartitionServer` until it is asked to shut down.

    The entry point behind ``repro serve``; installs SIGTERM/SIGINT handlers
    so an external kill still drains gracefully (checkpoints make even
    SIGKILL recoverable).  ``ready_callback`` fires once the socket listens.
    """
    import signal

    service = PartitionService(
        config=config,
        checkpoint_dir=checkpoint_dir,
        cache_capacity=cache_capacity,
        compute_threads=compute_threads,
    )
    server = PartitionServer(service, socket_path)
    await server.start()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
    if ready_callback is not None:
        ready_callback()
    await server.serve_until_shutdown()
