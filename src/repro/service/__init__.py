"""Partitioning as a service: a long-lived server over the warm-start stack.

The paper's headline use case is *repartitioning* — a simulation whose load
shifts every few timesteps and re-balances warm-started from the previous
partition.  This package composes the ingredients PRs 1-7 built (warm-start
``repartition()``, shared-memory ``SharedArray``, the kernel-backend
registry, checkpoint/resume) into a serving layer:

- :class:`~repro.service.server.PartitionService` — the in-process core:
  datasets registered once into server-owned shared-memory segments,
  sessions whose ``repartition`` calls warm-start from the previous centers
  on one warm :class:`~repro.core.kernels.SweepWorkspace`, single-flight
  request coalescing + per-dataset batching, an LRU result cache, and
  per-session :class:`~repro.runtime.checkpoint.CheckpointStore` snapshots
  a restarted server resumes bit-identically from.
- :class:`~repro.service.server.PartitionServer` — the asyncio socket
  front-end (length-prefixed pickles over a unix socket).
- :class:`~repro.service.client.ServiceClient` — the blocking client, with
  bounded reply waits, a safe-retry policy, and automatic reconnect.
- :mod:`~repro.service.resilience` — the SLO layer: per-request deadlines,
  admission control with immediate load shedding, per-dataset circuit
  breakers, a supervisor that detects crashed/hung compute (and executes
  ``REPRO_FAULTS`` plans against it), and the client
  :class:`~repro.service.resilience.RetryPolicy`.
- :func:`~repro.service.loadtest.run_load_test` — the p50/p99/throughput
  harness behind ``repro bench-service``.

Every result the service returns is bit-identical to a direct
``partitioner.partition()`` / ``repartition()`` call — caching, batching and
warm workspaces only change *when* work happens, never what it computes.
Retries are equally safe: nothing commits until a compute succeeds, so a
retried request replays (cache, session ``request_id``) or recomputes the
exact same step.
"""

from repro.service.cache import LRUResultCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.loadtest import run_load_test
from repro.service.resilience import (
    AdmissionController,
    BreakerOpen,
    CircuitBreaker,
    ComputeFailed,
    ComputeSupervisor,
    ComputeTimeout,
    DeadlineExceeded,
    RetryPolicy,
    ServiceFailure,
    ServiceOverloaded,
    ShuttingDown,
)
from repro.service.server import PartitionServer, PartitionService, ServiceError

__all__ = [
    "AdmissionController",
    "BreakerOpen",
    "CircuitBreaker",
    "ComputeFailed",
    "ComputeSupervisor",
    "ComputeTimeout",
    "DeadlineExceeded",
    "LRUResultCache",
    "PartitionServer",
    "PartitionService",
    "RetryPolicy",
    "ServiceClient",
    "ServiceClientError",
    "ServiceError",
    "ServiceFailure",
    "ServiceOverloaded",
    "ShuttingDown",
    "run_load_test",
]
