"""Resilience primitives for the partitioning service.

This module gives the serving path (:mod:`repro.service.server`) its
SLO-aware request lifecycle.  Every request flows through the same stations:

1. **Deadline** — a client-supplied ``deadline_ms`` bounds the whole request;
   the server cancels the wait (never the committed state) when it expires.
2. **Admission** — :class:`AdmissionController` caps in-flight compute and
   the pending queue; over-limit requests are shed *immediately* with a
   structured ``overloaded`` error carrying a ``retry_after_ms`` hint instead
   of queueing unboundedly.
3. **Breaker** — a per-dataset :class:`CircuitBreaker` opens after N
   consecutive compute failures, fails fast while open, and lets a half-open
   probe through after the reset window.  Every transition is a ledger event.
4. **Supervised compute** — :class:`ComputeSupervisor` runs the numeric work
   on an executor under a hang timeout (the service-side analogue of
   ``REPRO_SUPERSTEP_TIMEOUT``), abandons and replaces a wedged executor, and
   executes a deterministic :class:`~repro.runtime.faults.FaultPlan` against
   the compute path (``crash``/``kill`` by request ordinal, ``delay``/
   ``fail`` with ``op=compute``) so chaos tests can kill a live server's
   compute mid-request.
5. **Retry** — the client-side :class:`RetryPolicy` retries only
   safe-to-retry failures (``overloaded``, ``breaker_open``, compute
   crashes/timeouts, ``shutting_down``, connection resets) with exponential
   backoff plus jitter.  Retries are safe because the service is idempotent
   by construction: one-shot results are keyed in the digest LRU, and
   session steps commit atomically with an idempotency ``request_id``, so a
   retried request is bit-identical, never recomputed-divergent.

Everything here is transport-free and asyncio-native so the whole lifecycle
is testable without sockets.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import random
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.runtime.comm import CostLedger
from repro.runtime.faults import FaultPlan, InjectedFault

__all__ = [
    "COMPUTE_TIMEOUT_ENV",
    "DEFAULT_RETRYABLE_CODES",
    "AdmissionController",
    "BreakerOpen",
    "CircuitBreaker",
    "ComputeFailed",
    "ComputeSupervisor",
    "ComputeTimeout",
    "DeadlineExceeded",
    "RetryPolicy",
    "ServiceError",
    "ServiceFailure",
    "ServiceOverloaded",
    "ShuttingDown",
    "error_payload",
    "service_compute_timeout",
]

#: Wall-clock limit (seconds) one supervised compute may run before it is
#: presumed hung, abandoned, and its executor replaced.  Unset/0 disables the
#: watchdog — the service-layer analogue of ``REPRO_SUPERSTEP_TIMEOUT``.
COMPUTE_TIMEOUT_ENV = "REPRO_SERVICE_COMPUTE_TIMEOUT"


def service_compute_timeout() -> float | None:
    """The supervisor hang timeout configured via ``REPRO_SERVICE_COMPUTE_TIMEOUT``."""
    timeout = float(os.environ.get(COMPUTE_TIMEOUT_ENV, 0) or 0)
    return timeout if timeout > 0 else None


# -- structured errors --------------------------------------------------------


class ServiceError(RuntimeError):
    """A request the service cannot honour (unknown ids, bad shapes, closed).

    Plain :class:`ServiceError`\\ s are client mistakes — code
    ``bad_request``, never retryable.  Runtime conditions a retry can fix
    use the :class:`ServiceFailure` subclasses below.
    """

    code = "bad_request"
    retryable = False
    retry_after_ms: int | None = None


class ServiceFailure(ServiceError):
    """A runtime failure with a wire-visible code and retryability contract."""

    code = "internal"
    retryable = False

    def __init__(self, message: str, retry_after_ms: int | None = None) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class ServiceOverloaded(ServiceFailure):
    """Shed by admission control; retry after ``retry_after_ms``."""

    code = "overloaded"
    retryable = True


class BreakerOpen(ServiceFailure):
    """The dataset's circuit breaker is open; retry after the reset window."""

    code = "breaker_open"
    retryable = True


class ComputeFailed(ServiceFailure):
    """The supervised compute crashed.  Safe to retry: nothing was committed."""

    code = "compute_failed"
    retryable = True


class ComputeTimeout(ServiceFailure):
    """The supervised compute hung past the watchdog timeout and was abandoned."""

    code = "compute_timeout"
    retryable = True


class DeadlineExceeded(ServiceFailure):
    """The client's ``deadline_ms`` expired.  Not retried automatically —
    the deadline was the client's own budget — but a manual retry is safe
    (nothing commits on a cancelled request)."""

    code = "deadline_exceeded"
    retryable = False


class ShuttingDown(ServiceFailure):
    """The server is draining; retry against the restarted server."""

    code = "shutting_down"
    retryable = True


def error_payload(exc: BaseException) -> dict:
    """The structured wire error for any exception (see protocol docs)."""
    return {
        "status": "error",
        "error": f"{type(exc).__name__}: {exc}",
        "code": getattr(exc, "code", "internal"),
        "retryable": bool(getattr(exc, "retryable", False)),
        "retry_after_ms": getattr(exc, "retry_after_ms", None),
    }


# -- admission control --------------------------------------------------------


class AdmissionController:
    """Bounded in-flight + pending-work gate with immediate load shedding.

    ``max_inflight`` requests hold compute slots concurrently; up to
    ``max_queue`` more wait their turn (FIFO); anything beyond that is shed
    *synchronously* with :class:`ServiceOverloaded` — the queue can never
    grow without bound.  ``None`` disables either bound.
    """

    def __init__(
        self,
        max_inflight: int | None = None,
        max_queue: int | None = None,
        ledger: CostLedger | None = None,
        retry_hint: Callable[[int], int] | None = None,
    ) -> None:
        self.max_inflight = max_inflight if max_inflight and max_inflight > 0 else None
        self.max_queue = max_queue if max_queue is None or max_queue >= 0 else 0
        self.ledger = ledger if ledger is not None else CostLedger()
        self._retry_hint = retry_hint
        self.inflight = 0
        self._waiters: deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _hint_ms(self) -> int:
        if self._retry_hint is not None:
            return max(1, int(self._retry_hint(self.queued)))
        return 100

    @contextlib.asynccontextmanager
    async def slot(self):
        """Hold one compute slot; sheds immediately when both bounds are full."""
        await self._acquire()
        try:
            yield
        finally:
            self._release()

    async def _acquire(self) -> None:
        if self.max_inflight is None or self.inflight < self.max_inflight:
            self.inflight += 1
            return
        if self.max_queue is not None and len(self._waiters) >= self.max_queue:
            self.ledger.count("requests_shed")
            hint = self._hint_ms()
            raise ServiceOverloaded(
                f"server at capacity ({self.inflight} in flight, "
                f"{len(self._waiters)} queued); retry in {hint} ms",
                retry_after_ms=hint,
            )
        fut = asyncio.get_running_loop().create_future()
        self._waiters.append(fut)
        try:
            await fut
        except asyncio.CancelledError:
            # Deadline/disconnect while queued: give the slot back if it was
            # granted between _release() and our wakeup.
            if fut in self._waiters:
                self._waiters.remove(fut)
            elif fut.done() and not fut.cancelled() and fut.exception() is None:
                self._release()
            raise

    def _release(self) -> None:
        self.inflight -= 1
        while self._waiters:
            fut = self._waiters.popleft()
            if fut.done():  # cancelled while queued
                continue
            self.inflight += 1
            fut.set_result(None)
            return

    def shed_waiters(self, exc: ServiceFailure) -> None:
        """Fail every queued request (used by drain)."""
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_exception(exc)


# -- circuit breaker ----------------------------------------------------------


class CircuitBreaker:
    """Per-dataset three-state breaker over supervised-compute outcomes.

    ``closed`` — normal; ``threshold`` *consecutive* failures open it.
    ``open`` — :meth:`allow` fails fast with :class:`BreakerOpen` until
    ``reset_seconds`` elapse.  ``half_open`` — requests probe the dataset;
    the first success closes the breaker, the first failure re-opens it.
    Every transition is recorded on the ledger (``breaker_opened``,
    ``breaker_half_open``, ``breaker_closed``).
    """

    def __init__(
        self,
        name: str,
        threshold: int = 3,
        reset_seconds: float = 5.0,
        ledger: CostLedger | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        self.threshold = max(1, int(threshold))
        self.reset_seconds = float(reset_seconds)
        self.ledger = ledger if ledger is not None else CostLedger()
        self._clock = clock
        self.state = "closed"
        self.failures = 0
        self.opened_count = 0
        self._opened_at: float | None = None

    def _maybe_half_open(self) -> None:
        if (
            self.state == "open"
            and self._clock() - self._opened_at >= self.reset_seconds
        ):
            self.state = "half_open"
            self.ledger.record_event("breaker_half_open", dataset=self.name)

    def allow(self) -> None:
        """Raise :class:`BreakerOpen` while the breaker is open."""
        self._maybe_half_open()
        if self.state == "open":
            remaining = self.reset_seconds - (self._clock() - self._opened_at)
            hint = max(1, int(remaining * 1000))
            raise BreakerOpen(
                f"circuit breaker for dataset {self.name!r} is open after "
                f"{self.failures} consecutive compute failures; retry in {hint} ms",
                retry_after_ms=hint,
            )

    def record_success(self) -> None:
        if self.state != "closed":
            self.state = "closed"
            self.ledger.record_event("breaker_closed", dataset=self.name)
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.threshold:
            if self.state != "open":
                self.opened_count += 1
                self.ledger.record_event(
                    "breaker_opened", dataset=self.name, failures=self.failures
                )
            self.state = "open"
            self._opened_at = self._clock()

    def describe(self) -> dict:
        """JSON-serialisable state for the ``health`` op."""
        self._maybe_half_open()
        return {
            "state": self.state,
            "consecutive_failures": self.failures,
            "opened_count": self.opened_count,
            "threshold": self.threshold,
            "reset_seconds": self.reset_seconds,
        }


# -- supervised compute -------------------------------------------------------


class ComputeSupervisor:
    """Runs service compute on an executor under a watchdog + fault plan.

    Detects hung compute (``timeout`` seconds, default from
    ``REPRO_SERVICE_COMPUTE_TIMEOUT``), abandons the wedged call, and
    replaces the executor so later requests never queue behind a zombie
    thread — the replacement is counted as a *respawn* (``compute_respawn``
    ledger event), mirroring the worker respawns of
    :class:`~repro.runtime.procomm.ProcessComm`.

    A :class:`~repro.runtime.faults.FaultPlan` is executed against the
    compute path, addressed by the 0-based ordinal of supervised compute
    calls: ``crash:step=N`` / ``kill:rank=0,step=N`` abort request ``N``
    before any work (a killed compute session), ``delay:op=compute,index=N,
    seconds=S`` stalls it (exercising the watchdog and client deadlines),
    and ``fail:op=compute,index=N`` does the work then discards it and dies
    — a mid-request kill whose retry must still be bit-identical.
    """

    def __init__(
        self,
        threads: int = 1,
        timeout: float | None = None,
        faults: FaultPlan | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        self.threads = max(1, int(threads))
        self.timeout = timeout if timeout is None else float(timeout)
        self.faults = faults
        self.ledger = ledger if ledger is not None else CostLedger()
        self.respawns = 0
        self.step = 0  # ordinal of the next supervised compute
        self.avg_compute_s: float | None = None
        self._pool = self._make_pool()
        self._retired: list[ThreadPoolExecutor] = []  # pools with abandoned work

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self.threads, thread_name_prefix="repro-service"
        )

    def retry_after_ms(self, queue_depth: int = 0) -> int:
        """Load-shedding hint: roughly one average compute per queued request."""
        base = self.avg_compute_s if self.avg_compute_s is not None else 0.05
        return min(5000, max(25, int(1000 * base * (queue_depth + 1))))

    def _observe(self, started: float) -> None:
        elapsed = time.perf_counter() - started
        if self.avg_compute_s is None:
            self.avg_compute_s = elapsed
        else:  # EWMA with enough memory to smooth cache-hit-free bursts
            self.avg_compute_s = 0.7 * self.avg_compute_s + 0.3 * elapsed

    async def run(self, fn: Callable[[], object], label: str | None = None):
        """Run ``fn`` supervised; raises only :class:`ServiceFailure` kinds.

        ``fn`` must be pure with respect to service state — callers commit
        its result only after this returns, which is what makes abandoning
        a hung/cancelled compute safe (and retries bit-identical).
        """
        step = self.step
        self.step += 1
        delay = fail = None
        plan = self.faults
        if plan is not None:
            spec = plan.take_crash(step)
            if spec is None:
                spec = plan.take_kill(step)
            if spec is not None:
                self.ledger.record_event(
                    "injected_compute_crash", step=step, label=label
                )
                raise ComputeFailed(
                    f"injected compute crash at request #{step} ({label})"
                )
            delay = plan.take_collective("delay", "compute", step)
            fail = plan.take_collective("fail", "compute", step)
            if delay is not None:
                self.ledger.record_event(
                    "injected_compute_delay", step=step, seconds=delay.seconds,
                    label=label,
                )

        def job():
            if delay is not None:
                time.sleep(delay.seconds)
            out = fn()
            if fail is not None:
                raise InjectedFault(
                    f"injected compute failure after the work of request #{step}"
                )
            return out

        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, job)
        started = time.perf_counter()
        try:
            # shield: on timeout/cancel the *wait* dies instantly while the
            # executor thread runs on; _abandon decides whether it wedged.
            if self.timeout is None:
                result = await asyncio.shield(future)
            else:
                result = await asyncio.wait_for(asyncio.shield(future), self.timeout)
        except asyncio.TimeoutError:
            self._abandon(future)
            self.ledger.record_event(
                "compute_timeout", step=step, timeout=self.timeout, label=label
            )
            raise ComputeTimeout(
                f"compute exceeded the {self.timeout:g}s supervisor timeout "
                f"and was abandoned ({label})"
            ) from None
        except asyncio.CancelledError:
            self._abandon(future)
            raise
        except InjectedFault as exc:
            self._observe(started)
            self.ledger.record_event(
                "injected_compute_failure", step=step, label=label
            )
            raise ComputeFailed(str(exc)) from exc
        except Exception as exc:
            self._observe(started)
            raise ComputeFailed(f"{type(exc).__name__}: {exc}") from exc
        self._observe(started)
        return result

    def _abandon(self, future: asyncio.Future) -> None:
        """Walk away from an in-flight compute; replace the pool if it wedged."""
        if future.done():
            return
        future.add_done_callback(
            lambda f: f.cancelled() or f.exception()  # silence late failures
        )
        self._pool.shutdown(wait=False)
        self._retired.append(self._pool)
        self._pool = self._make_pool()
        self.respawns += 1
        self.ledger.count("compute_respawns")
        self.ledger.record_event("compute_respawn", respawns=self.respawns)

    def submit(self, fn: Callable[[], object]):
        """Unsupervised executor access (cheap non-compute work)."""
        return asyncio.get_running_loop().run_in_executor(self._pool, fn)

    def quiesce(self, timeout: float | None = None) -> bool:
        """Block until every *abandoned* compute thread has actually exited.

        Abandoned computes keep running after their request was answered
        (timeout/cancel) — often mid-sweep over shared-memory segments the
        service owns.  Callers that are about to release those segments
        (drain) MUST quiesce first, or a wedged thread reads unmapped
        memory.  Returns ``False`` if a thread outlived ``timeout`` — the
        caller should then *leak* its segments (the resource tracker
        reclaims them at process exit) rather than unmap under it.
        """
        deadline = None if timeout is None else time.monotonic() + float(timeout)
        clean = True
        for pool in self._retired:
            for thread in list(getattr(pool, "_threads", ())):
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)
                if thread.is_alive():
                    clean = False
        if clean:
            self._retired.clear()
        return clean

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)


# -- client-side retry policy -------------------------------------------------

#: Codes the default policy treats as safe to retry.  ``"connection"`` is the
#: pseudo-code for transport-level failures (reset, EOF mid-frame, reply
#: timeout, server restart) — safe because every service op a client retries
#: is idempotent (digest-keyed cache, session ``request_id`` replay).
DEFAULT_RETRYABLE_CODES = (
    "overloaded",
    "breaker_open",
    "compute_failed",
    "compute_timeout",
    "shutting_down",
    "connection",
)


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter over the safe-to-retry error codes.

    ``max_attempts`` bounds total tries (1 = no retries).  The *n*-th retry
    sleeps ``base_delay * multiplier**n`` (capped at ``max_delay``), inflated
    by up to ``jitter`` fraction of itself so synchronized clients do not
    re-stampede a recovering server; a server ``retry_after_ms`` hint raises
    the floor.  ``seed`` pins the jitter stream for reproducible tests.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_codes: tuple = DEFAULT_RETRYABLE_CODES
    seed: int | None = None

    def delays(self):
        """Yield the backoff sleep (seconds) before each retry, in order."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        for _ in range(max(0, self.max_attempts - 1)):
            yield delay * (1.0 + self.jitter * rng.random())
            delay = min(self.max_delay, delay * self.multiplier)

    def retries(self, code: str) -> bool:
        return code in self.retry_codes
