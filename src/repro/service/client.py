"""Thin blocking client for the partitioning service.

One :class:`ServiceClient` wraps one unix-socket connection; it is safe to
use from one thread at a time (the load-test harness gives each simulated
client its own instance).  Every method mirrors a server op and returns the
already-unpickled value; server-side errors re-raise here as
:class:`ServiceClientError` carrying the server's message.
"""

from __future__ import annotations

import os
import socket
import time

import numpy as np

from repro.service.protocol import recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """The server answered a request with an error status."""


class ServiceClient:
    """Blocking client; connects lazily, usable as a context manager."""

    def __init__(self, socket_path: str | os.PathLike, connect_timeout: float = 10.0) -> None:
        self.socket_path = os.fspath(socket_path)
        self.connect_timeout = float(connect_timeout)
        self._sock: socket.socket | None = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServiceClient":
        """Connect, waiting up to ``connect_timeout`` for the socket to appear.

        The wait covers the standard launch race: a client started together
        with ``repro serve`` must not fail before the server binds.
        """
        if self._sock is not None:
            return self
        deadline = time.perf_counter() + self.connect_timeout
        while True:
            try:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(self.socket_path)
                self._sock = sock
                return self
            except (FileNotFoundError, ConnectionRefusedError):
                sock.close()
                if time.perf_counter() > deadline:
                    raise
                time.sleep(0.05)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    def _call(self, op: str, **fields):
        self.connect()
        send_frame(self._sock, {"op": op, **fields})
        response = recv_frame(self._sock)
        if response.get("status") != "ok":
            raise ServiceClientError(response.get("error", "unknown server error"))
        return response.get("value")

    # -- ops -----------------------------------------------------------------

    def ping(self) -> str:
        return self._call("ping")

    def register_dataset(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        dataset_id: str | None = None,
    ) -> dict:
        return self._call("register_dataset", points=np.asarray(points),
                          weights=None if weights is None else np.asarray(weights),
                          dataset_id=dataset_id)

    def partition(self, dataset_id: str, k: int, epsilon: float = 0.03, seed: int = 0,
                  weights: np.ndarray | None = None):
        return self._call("partition", dataset_id=dataset_id, k=int(k),
                          epsilon=float(epsilon), seed=int(seed),
                          weights=None if weights is None else np.asarray(weights))

    def open_session(self, dataset_id: str, k: int, epsilon: float = 0.03,
                     seed: int = 0) -> dict:
        return self._call("open_session", dataset_id=dataset_id, k=int(k),
                          epsilon=float(epsilon), seed=int(seed))

    def repartition(self, session_id: str, weights: np.ndarray | None = None,
                    weight_delta: np.ndarray | None = None,
                    points: np.ndarray | None = None):
        return self._call(
            "repartition", session_id=session_id,
            weights=None if weights is None else np.asarray(weights),
            weight_delta=None if weight_delta is None else np.asarray(weight_delta),
            points=None if points is None else np.asarray(points),
        )

    def close_session(self, session_id: str, drop_checkpoints: bool = False) -> dict:
        return self._call("close_session", session_id=session_id,
                          drop_checkpoints=bool(drop_checkpoints))

    def stats(self) -> dict:
        return self._call("stats")

    def shutdown(self) -> str:
        """Ask the server to drain and exit; closes this connection too."""
        value = self._call("shutdown")
        self.close()
        return value
