"""Blocking client for the partitioning service, with retries and deadlines.

One :class:`ServiceClient` wraps one unix-socket connection; it is safe to
use from one thread at a time (the load-test harness gives each simulated
client its own instance).  Every method mirrors a server op and returns the
already-unpickled value; server-side errors re-raise here as
:class:`ServiceClientError` carrying the server's structured error fields
(``code``, ``retryable``, ``retry_after_ms``).

Resilience contract:

* **No hangs.**  Every reply wait is bounded by ``request_timeout`` (and by
  the request's ``deadline_ms`` plus slack when one is set); a stalled or
  truncated reply raises a clean :class:`ServiceClientError` instead of
  blocking the thread forever.
* **Safe retries only.**  The :class:`~repro.service.resilience.RetryPolicy`
  retries idempotent ops on retryable codes (``overloaded``,
  ``breaker_open``, compute crashes, ``shutting_down``) and on transport
  failures (pseudo-code ``"connection"``: reset, EOF, reply timeout, server
  restart).  Retries are bit-identical, never recomputed-divergent: one-shot
  results come from the server's digest-keyed cache, and each
  :meth:`repartition` call carries a ``request_id`` the server uses to
  replay an already-committed step instead of re-applying its delta.
* **Automatic reconnect.**  A transport failure closes the socket; the next
  attempt re-runs :meth:`connect`, whose wait loop spans a server restart
  (the unix socket disappears, then reappears).
"""

from __future__ import annotations

import os
import socket
import time
import uuid

import numpy as np

from repro.service.protocol import ProtocolError, recv_frame, send_frame
from repro.service.resilience import RetryPolicy

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """A failed request, carrying the server's structured error fields.

    ``code`` is the server's error code — or the client-side pseudo-code
    ``"connection"`` for transport failures (reset, EOF mid-frame, reply
    timeout, unreachable socket).  ``retryable`` is the server's verdict on
    whether a retry can succeed; ``retry_after_ms`` is its backoff hint.
    """

    def __init__(
        self,
        message: str,
        code: str = "internal",
        retryable: bool = False,
        retry_after_ms: int | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retryable = retryable
        self.retry_after_ms = retry_after_ms


class ServiceClient:
    """Blocking client; connects lazily, usable as a context manager.

    ``request_timeout`` bounds every reply wait (``None`` restores the old
    block-forever behaviour; don't).  ``retry`` is the
    :class:`RetryPolicy` for idempotent ops — pass
    ``RetryPolicy(max_attempts=1)`` to disable retries.  ``retries_total``
    counts retries performed over the client's lifetime.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike,
        connect_timeout: float = 10.0,
        request_timeout: float | None = 300.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.socket_path = os.fspath(socket_path)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = None if request_timeout is None else float(request_timeout)
        self.retry = retry if retry is not None else RetryPolicy()
        self.retries_total = 0
        self._sock: socket.socket | None = None

    # -- connection management ----------------------------------------------

    def connect(self) -> "ServiceClient":
        """Connect, waiting up to ``connect_timeout`` for the socket to appear.

        The wait covers the standard launch race (a client started together
        with ``repro serve``) *and* a server restart — the stale socket path
        vanishes, then the new server binds it.
        """
        if self._sock is not None:
            return self
        deadline = time.perf_counter() + self.connect_timeout
        while True:
            try:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(self.socket_path)
                self._sock = sock
                return self
            except (FileNotFoundError, ConnectionRefusedError):
                sock.close()
                if time.perf_counter() > deadline:
                    raise
                time.sleep(0.05)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request machinery ----------------------------------------------------

    def _reply_timeout(self, deadline_ms: float | None) -> float | None:
        """Reply wait bound: the request timeout, tightened by the deadline.

        A request with a deadline cannot usefully out-wait it — the server
        answers ``deadline_exceeded`` at the deadline, so the reply is due
        within ``deadline_ms`` plus transport slack.
        """
        timeout = self.request_timeout
        if deadline_ms is not None:
            budget = float(deadline_ms) / 1000.0 + 5.0
            timeout = budget if timeout is None else min(timeout, budget)
        return timeout

    def _roundtrip(self, payload: dict, deadline_ms: float | None):
        try:
            self.connect()
            send_frame(self._sock, payload)
            response = recv_frame(self._sock, timeout=self._reply_timeout(deadline_ms))
        except (ProtocolError, OSError) as exc:
            # The connection can no longer be trusted (a stale reply may
            # still arrive); drop it so the next attempt reconnects.
            self.close()
            raise ServiceClientError(
                f"{type(exc).__name__}: {exc}", code="connection", retryable=True
            ) from exc
        if not isinstance(response, dict):
            self.close()
            raise ServiceClientError(
                f"malformed response frame: {type(response).__name__}",
                code="connection", retryable=True,
            )
        if response.get("status") != "ok":
            raise ServiceClientError(
                response.get("error", "unknown server error"),
                code=response.get("code", "internal"),
                retryable=bool(response.get("retryable", False)),
                retry_after_ms=response.get("retry_after_ms"),
            )
        return response.get("value")

    def _call(self, op: str, idempotent: bool = True,
              deadline_ms: float | None = None, **fields):
        """One op with the retry loop around it.

        Only idempotent ops retry (every op except ``close_session`` and
        ``shutdown`` — those could observe their own first attempt's effect
        and fail spuriously).  The backoff sleep honours the larger of the
        policy's delay and the server's ``retry_after_ms`` hint.
        """
        payload = {"op": op, **fields}
        if deadline_ms is not None:
            payload["deadline_ms"] = float(deadline_ms)
        delays = self.retry.delays() if idempotent else iter(())
        while True:
            try:
                return self._roundtrip(payload, deadline_ms)
            except ServiceClientError as exc:
                if not (exc.retryable and self.retry.retries(exc.code)):
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise
                if exc.retry_after_ms:
                    delay = max(delay, exc.retry_after_ms / 1000.0)
                self.retries_total += 1
                time.sleep(delay)

    # -- ops -----------------------------------------------------------------

    def ping(self) -> str:
        return self._call("ping")

    def register_dataset(
        self,
        points: np.ndarray,
        weights: np.ndarray | None = None,
        dataset_id: str | None = None,
    ) -> dict:
        return self._call("register_dataset", points=np.asarray(points),
                          weights=None if weights is None else np.asarray(weights),
                          dataset_id=dataset_id)

    def register_manifest(self, manifest: str, dataset_id: str | None = None) -> dict:
        """Register a sharded on-disk dataset by manifest path (server-side file).

        Sends only the path; the server streams the shards into its shared
        segments shard-at-a-time — the dataset bytes never cross the socket.
        """
        return self._call("register_manifest", manifest=str(manifest),
                          dataset_id=dataset_id)

    def partition(self, dataset_id: str, k: int, epsilon: float = 0.03, seed: int = 0,
                  weights: np.ndarray | None = None,
                  deadline_ms: float | None = None):
        return self._call("partition", deadline_ms=deadline_ms,
                          dataset_id=dataset_id, k=int(k),
                          epsilon=float(epsilon), seed=int(seed),
                          weights=None if weights is None else np.asarray(weights))

    def open_session(self, dataset_id: str, k: int, epsilon: float = 0.03,
                     seed: int = 0) -> dict:
        return self._call("open_session", dataset_id=dataset_id, k=int(k),
                          epsilon=float(epsilon), seed=int(seed))

    def repartition(self, session_id: str, weights: np.ndarray | None = None,
                    weight_delta: np.ndarray | None = None,
                    points: np.ndarray | None = None,
                    deadline_ms: float | None = None):
        # one request_id spans all retries of this call: if the first attempt
        # committed but its reply was lost, the retry replays the committed
        # result instead of double-applying the delta
        return self._call(
            "repartition", deadline_ms=deadline_ms, session_id=session_id,
            request_id=uuid.uuid4().hex,
            weights=None if weights is None else np.asarray(weights),
            weight_delta=None if weight_delta is None else np.asarray(weight_delta),
            points=None if points is None else np.asarray(points),
        )

    def close_session(self, session_id: str, drop_checkpoints: bool = False) -> dict:
        return self._call("close_session", idempotent=False, session_id=session_id,
                          drop_checkpoints=bool(drop_checkpoints))

    def stats(self) -> dict:
        return self._call("stats")

    def health(self) -> dict:
        """The server's readiness snapshot (queue depth, breakers, respawns)."""
        return self._call("health")

    def shutdown(self) -> str:
        """Ask the server to drain and exit; closes this connection too."""
        value = self._call("shutdown", idempotent=False)
        self.close()
        return value
