"""Load-test harness: p50/p99 latency + throughput under concurrent clients.

Drives a :class:`~repro.service.server.PartitionServer` (an in-process one
launched on a background event-loop thread, or any already-running socket)
with many concurrent blocking clients, each on its own thread and
connection — the same shape as real simulation ranks hammering one shared
partitioning server.  The request mix cycles a small set of seeds, so the
run exercises all three fast paths at once: LRU cache hits, single-flight
coalescing of identical in-flight requests, and per-dataset batching of
distinct ones.

Besides timing, the harness *asserts bit-identity*: every response must
equal the direct ``GeographerPartitioner().partition(...)`` result for its
seed, so batching/caching can never be bought with changed output.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.core.config import BalancedKMeansConfig
from repro.partitioners.geographer import GeographerPartitioner
from repro.service.client import ServiceClient

__all__ = ["run_load_test", "start_background_server", "format_report"]


def start_background_server(
    socket_path: str | os.PathLike,
    config: BalancedKMeansConfig | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    cache_capacity: int = 128,
    compute_threads: int = 1,
) -> threading.Thread:
    """Launch :func:`repro.service.server.serve` on a daemon thread.

    Returns once the socket is listening; shut the server down with
    ``ServiceClient(socket_path).shutdown()`` and join the thread.
    """
    import asyncio

    from repro.service.server import serve

    ready = threading.Event()
    failure: list[BaseException] = []

    def runner():
        try:
            asyncio.run(serve(
                socket_path, config=config, checkpoint_dir=checkpoint_dir,
                cache_capacity=cache_capacity, compute_threads=compute_threads,
                ready_callback=ready.set,
            ))
        except BaseException as exc:  # pragma: no cover - startup failures
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=runner, name="repro-service-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("partitioning server did not come up within 30s")
    if failure:
        raise failure[0]
    return thread


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_load_test(
    socket_path: str | os.PathLike | None = None,
    n_points: int = 2000,
    k: int = 8,
    epsilon: float = 0.03,
    clients: int = 32,
    requests_per_client: int = 4,
    distinct_seeds: int = 4,
    cache_capacity: int = 128,
    compute_threads: int = 1,
    seed: int = 0,
    verify_identity: bool = True,
    out_json: str | os.PathLike | None = None,
) -> dict:
    """Hammer a partitioning server and report latency/throughput.

    With ``socket_path=None`` an in-process server is launched on a scratch
    socket and shut down afterwards (segments released, leak-free);
    otherwise the given server is used and left running.  Every client
    issues ``requests_per_client`` ``partition`` requests whose seeds cycle
    through ``range(distinct_seeds)``.  With ``verify_identity`` each
    distinct seed's response is compared bit-for-bit against a direct
    in-process ``GeographerPartitioner`` run on the same inputs.

    Returns a JSON-serialisable report (also written to ``out_json`` when
    given): client/request counts, wall seconds, ``throughput_rps``,
    ``latency_ms`` percentiles, the server's counter/cache stats, and
    ``identity_ok``.
    """
    rng = np.random.default_rng(seed)
    points = rng.random((int(n_points), 2))

    own_server = socket_path is None
    thread = None
    tmpdir = None
    if own_server:
        import tempfile

        tmpdir = tempfile.mkdtemp(prefix="repro-service-")
        socket_path = os.path.join(tmpdir, "service.sock")
        thread = start_background_server(
            socket_path, cache_capacity=cache_capacity, compute_threads=compute_threads,
        )

    try:
        with ServiceClient(socket_path) as setup:
            dataset_id = setup.register_dataset(points)["dataset_id"]

        latencies: list[float] = []
        results: dict[int, object] = {}
        errors: list[str] = []
        lock = threading.Lock()
        start_barrier = threading.Barrier(int(clients) + 1)

        def client_main(idx: int) -> None:
            try:
                with ServiceClient(socket_path) as client:
                    start_barrier.wait()
                    for r in range(int(requests_per_client)):
                        req_seed = (idx + r) % max(1, int(distinct_seeds))
                        t0 = time.perf_counter()
                        result = client.partition(dataset_id, k, epsilon=epsilon, seed=req_seed)
                        dt = time.perf_counter() - t0
                        with lock:
                            latencies.append(dt)
                            first = results.setdefault(req_seed, result)
                            if not np.array_equal(
                                np.asarray(first.assignment), np.asarray(result.assignment)
                            ):
                                errors.append(f"seed {req_seed}: divergent responses")
            except Exception as exc:
                with lock:
                    errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
                try:
                    start_barrier.abort()
                except Exception:
                    pass

        workers = [
            threading.Thread(target=client_main, args=(i,), daemon=True)
            for i in range(int(clients))
        ]
        for w in workers:
            w.start()
        try:
            start_barrier.wait()
        except threading.BrokenBarrierError:  # a client failed during connect
            pass
        wall_start = time.perf_counter()
        for w in workers:
            w.join()
        wall = time.perf_counter() - wall_start

        identity_ok = True
        if verify_identity and not errors:
            # unbatched/uncached reference: a fresh partitioner per seed, the
            # exact call a client would have made without the service
            for req_seed, served in sorted(results.items()):
                direct = GeographerPartitioner().partition(
                    points, int(k), epsilon=float(epsilon), rng=int(req_seed)
                )
                if not (
                    np.array_equal(np.asarray(direct.assignment), np.asarray(served.assignment))
                    and np.array_equal(np.asarray(direct.centers), np.asarray(served.centers))
                    and direct.imbalance == served.imbalance
                ):
                    identity_ok = False
                    errors.append(f"seed {req_seed}: served result != direct partition()")

        with ServiceClient(socket_path) as probe:
            stats = probe.stats()

        lat_sorted = sorted(latencies)
        report = {
            "n_points": int(n_points),
            "k": int(k),
            "epsilon": float(epsilon),
            "clients": int(clients),
            "requests_per_client": int(requests_per_client),
            "distinct_seeds": int(distinct_seeds),
            "requests_total": len(latencies),
            "wall_seconds": wall,
            "throughput_rps": (len(latencies) / wall) if wall > 0 else float("nan"),
            "latency_ms": {
                "p50": _percentile(lat_sorted, 0.50) * 1e3,
                "p90": _percentile(lat_sorted, 0.90) * 1e3,
                "p99": _percentile(lat_sorted, 0.99) * 1e3,
                "mean": (sum(lat_sorted) / len(lat_sorted) * 1e3) if lat_sorted else float("nan"),
                "max": (lat_sorted[-1] * 1e3) if lat_sorted else float("nan"),
            },
            "server": stats,
            "identity_ok": identity_ok,
            "errors": errors,
        }
    finally:
        if own_server:
            try:
                with ServiceClient(socket_path) as closer:
                    closer.shutdown()
            except Exception:
                pass
            if thread is not None:
                thread.join(timeout=30.0)
            if tmpdir is not None:
                import shutil

                shutil.rmtree(tmpdir, ignore_errors=True)

    if out_json is not None:
        with open(out_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def format_report(report: dict) -> str:
    """One human-readable block for the CLI / bench output."""
    lat = report["latency_ms"]
    lines = [
        f"service load test: {report['clients']} clients x "
        f"{report['requests_per_client']} requests "
        f"(n={report['n_points']}, k={report['k']}, {report['distinct_seeds']} seeds)",
        f"  requests    {report['requests_total']}  in  {report['wall_seconds']:.3f} s"
        f"  ->  {report['throughput_rps']:.1f} req/s",
        f"  latency ms  p50={lat['p50']:.2f}  p90={lat['p90']:.2f}  "
        f"p99={lat['p99']:.2f}  mean={lat['mean']:.2f}  max={lat['max']:.2f}",
        f"  cache       {report['server']['cache']}",
        f"  counters    {report['server']['counters']}",
        f"  identity    {'bit-identical to direct partition()' if report['identity_ok'] else 'MISMATCH'}",
    ]
    if report["errors"]:
        lines.append(f"  errors      {report['errors']}")
    return "\n".join(lines)
