"""Load-test harness: p50/p99 latency + throughput under concurrent clients.

Drives a :class:`~repro.service.server.PartitionServer` (an in-process one
launched on a background event-loop thread, or any already-running socket)
with many concurrent blocking clients, each on its own thread and
connection — the same shape as real simulation ranks hammering one shared
partitioning server.  The request mix cycles a small set of seeds, so the
run exercises all three fast paths at once: LRU cache hits, single-flight
coalescing of identical in-flight requests, and per-dataset batching of
distinct ones.

Besides timing, the harness *asserts bit-identity*: every response must
equal the direct ``GeographerPartitioner().partition(...)`` result for its
seed, so batching/caching can never be bought with changed output.  It is
also the chaos gate's measuring stick: under a ``REPRO_FAULTS`` plan or a
server kill, every request must either complete bit-identical or fail with
a structured retryable error — per-request failures are recorded (not
silently dropped), worker threads that fail to join within
``join_timeout`` are surfaced as ``unjoined_workers``, and both make the
harness report a failure instead of underreporting load.
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np

from repro.core.config import BalancedKMeansConfig
from repro.partitioners.geographer import GeographerPartitioner
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.resilience import RetryPolicy

__all__ = ["run_load_test", "start_background_server", "format_report"]


def start_background_server(
    socket_path: str | os.PathLike,
    config: BalancedKMeansConfig | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
    cache_capacity: int = 128,
    compute_threads: int = 1,
    max_inflight: int | None = None,
    max_queue: int | None = 256,
    compute_timeout: float | None = None,
    drain_grace: float | None = 10.0,
) -> threading.Thread:
    """Launch :func:`repro.service.server.serve` on a daemon thread.

    Returns once the socket is listening; shut the server down with
    ``ServiceClient(socket_path).shutdown()`` and join the thread.
    """
    import asyncio

    from repro.service.server import serve

    ready = threading.Event()
    failure: list[BaseException] = []

    def runner():
        try:
            asyncio.run(serve(
                socket_path, config=config, checkpoint_dir=checkpoint_dir,
                cache_capacity=cache_capacity, compute_threads=compute_threads,
                max_inflight=max_inflight, max_queue=max_queue,
                compute_timeout=compute_timeout, drain_grace=drain_grace,
                ready_callback=ready.set,
            ))
        except BaseException as exc:  # pragma: no cover - startup failures
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=runner, name="repro-service-server", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("partitioning server did not come up within 30s")
    if failure:
        raise failure[0]
    return thread


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_load_test(
    socket_path: str | os.PathLike | None = None,
    n_points: int = 2000,
    k: int = 8,
    epsilon: float = 0.03,
    clients: int = 32,
    requests_per_client: int = 4,
    distinct_seeds: int = 4,
    cache_capacity: int = 128,
    compute_threads: int = 1,
    seed: int = 0,
    verify_identity: bool = True,
    out_json: str | os.PathLike | None = None,
    retries: int | None = None,
    deadline_ms: float | None = None,
    request_timeout: float | None = 300.0,
    max_inflight: int | None = None,
    max_queue: int | None = 256,
    join_timeout: float = 120.0,
) -> dict:
    """Hammer a partitioning server and report latency/throughput.

    With ``socket_path=None`` an in-process server is launched on a scratch
    socket and shut down afterwards (segments released, leak-free);
    otherwise the given server is used and left running.  Every client
    issues ``requests_per_client`` ``partition`` requests whose seeds cycle
    through ``range(distinct_seeds)``.  With ``verify_identity`` each
    distinct seed's response is compared bit-for-bit against a direct
    in-process ``GeographerPartitioner`` run on the same inputs —
    whatever completed is verified even when other requests failed.

    ``retries`` caps each client's attempts per request (``None`` = the
    default :class:`RetryPolicy`); ``deadline_ms`` attaches a per-request
    deadline; ``max_inflight``/``max_queue`` configure the in-process
    server's admission control.  A request that exhausts its retries is
    recorded in ``errors`` (with its structured code) and counted in
    ``requests_failed`` — the other requests keep running.  Worker threads
    still alive after ``join_timeout`` are listed in ``unjoined_workers``;
    callers must treat a non-empty list as a failed run (the CLI exits
    nonzero), never as lighter load.

    Returns a JSON-serialisable report (also written to ``out_json`` when
    given): client/request counts, wall seconds, ``throughput_rps``,
    ``latency_ms`` percentiles, the server's counter/cache stats plus a
    ``health`` snapshot, retry/failure counts, and ``identity_ok``.
    """
    rng = np.random.default_rng(seed)
    points = rng.random((int(n_points), 2))

    own_server = socket_path is None
    thread = None
    tmpdir = None
    if own_server:
        import tempfile

        tmpdir = tempfile.mkdtemp(prefix="repro-service-")
        socket_path = os.path.join(tmpdir, "service.sock")
        thread = start_background_server(
            socket_path, cache_capacity=cache_capacity, compute_threads=compute_threads,
            max_inflight=max_inflight, max_queue=max_queue,
        )

    retry_policy = None if retries is None else RetryPolicy(max_attempts=max(1, int(retries)))

    def make_client() -> ServiceClient:
        return ServiceClient(
            socket_path, request_timeout=request_timeout,
            retry=retry_policy if retry_policy is not None else RetryPolicy(),
        )

    try:
        with make_client() as setup:
            dataset_id = setup.register_dataset(points)["dataset_id"]

        latencies: list[float] = []
        results: dict[int, object] = {}
        errors: list[str] = []
        counts = {"failed": 0, "retries": 0}
        lock = threading.Lock()
        start_barrier = threading.Barrier(int(clients) + 1)

        def client_main(idx: int) -> None:
            try:
                with make_client() as client:
                    start_barrier.wait()
                    for r in range(int(requests_per_client)):
                        req_seed = (idx + r) % max(1, int(distinct_seeds))
                        t0 = time.perf_counter()
                        try:
                            result = client.partition(
                                dataset_id, k, epsilon=epsilon, seed=req_seed,
                                deadline_ms=deadline_ms,
                            )
                        except ServiceClientError as exc:
                            # retries exhausted: count it, keep hammering
                            with lock:
                                counts["failed"] += 1
                                errors.append(
                                    f"client {idx} seed {req_seed}: "
                                    f"[{exc.code}] {exc}"
                                )
                            continue
                        dt = time.perf_counter() - t0
                        with lock:
                            latencies.append(dt)
                            first = results.setdefault(req_seed, result)
                            if not np.array_equal(
                                np.asarray(first.assignment), np.asarray(result.assignment)
                            ):
                                errors.append(f"seed {req_seed}: divergent responses")
                    with lock:
                        counts["retries"] += client.retries_total
            except Exception as exc:
                with lock:
                    errors.append(f"client {idx}: {type(exc).__name__}: {exc}")
                try:
                    start_barrier.abort()
                except Exception:
                    pass

        workers = [
            threading.Thread(target=client_main, args=(i,), daemon=True)
            for i in range(int(clients))
        ]
        for w in workers:
            w.start()
        try:
            start_barrier.wait()
        except threading.BrokenBarrierError:  # a client failed during connect
            pass
        wall_start = time.perf_counter()
        join_deadline = wall_start + float(join_timeout)
        unjoined: list[int] = []
        for i, w in enumerate(workers):
            w.join(timeout=max(0.0, join_deadline - time.perf_counter()))
            if w.is_alive():
                unjoined.append(i)
        wall = time.perf_counter() - wall_start
        if unjoined:
            errors.append(
                f"{len(unjoined)} worker thread(s) failed to join within "
                f"{join_timeout:g}s: {unjoined} — results underreport the load"
            )

        identity_ok = True
        if verify_identity:
            # unbatched/uncached reference: a fresh partitioner per seed, the
            # exact call a client would have made without the service
            for req_seed, served in sorted(results.items()):
                direct = GeographerPartitioner().partition(
                    points, int(k), epsilon=float(epsilon), rng=int(req_seed)
                )
                if not (
                    np.array_equal(np.asarray(direct.assignment), np.asarray(served.assignment))
                    and np.array_equal(np.asarray(direct.centers), np.asarray(served.centers))
                    and direct.imbalance == served.imbalance
                ):
                    identity_ok = False
                    errors.append(f"seed {req_seed}: served result != direct partition()")

        stats = health = None
        try:
            with make_client() as probe:
                stats = probe.stats()
                health = probe.health()
        except Exception as exc:  # the server may be gone in kill scenarios
            errors.append(f"stats probe: {type(exc).__name__}: {exc}")

        lat_sorted = sorted(latencies)
        report = {
            "n_points": int(n_points),
            "k": int(k),
            "epsilon": float(epsilon),
            "clients": int(clients),
            "requests_per_client": int(requests_per_client),
            "distinct_seeds": int(distinct_seeds),
            "deadline_ms": deadline_ms,
            "requests_total": len(latencies),
            "requests_failed": counts["failed"],
            "retries_total": counts["retries"],
            "unjoined_workers": unjoined,
            "wall_seconds": wall,
            "throughput_rps": (len(latencies) / wall) if wall > 0 else float("nan"),
            "latency_ms": {
                "p50": _percentile(lat_sorted, 0.50) * 1e3,
                "p90": _percentile(lat_sorted, 0.90) * 1e3,
                "p99": _percentile(lat_sorted, 0.99) * 1e3,
                "mean": (sum(lat_sorted) / len(lat_sorted) * 1e3) if lat_sorted else float("nan"),
                "max": (lat_sorted[-1] * 1e3) if lat_sorted else float("nan"),
            },
            "server": stats,
            "health": health,
            "identity_ok": identity_ok,
            "errors": errors,
        }
    finally:
        if own_server:
            try:
                with make_client() as closer:
                    closer.shutdown()
            except Exception:
                pass
            if thread is not None:
                thread.join(timeout=30.0)
            if tmpdir is not None:
                import shutil

                shutil.rmtree(tmpdir, ignore_errors=True)

    if out_json is not None:
        with open(out_json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    return report


def format_report(report: dict) -> str:
    """One human-readable block for the CLI / bench output."""
    lat = report["latency_ms"]
    lines = [
        f"service load test: {report['clients']} clients x "
        f"{report['requests_per_client']} requests "
        f"(n={report['n_points']}, k={report['k']}, {report['distinct_seeds']} seeds)",
        f"  requests    {report['requests_total']}  in  {report['wall_seconds']:.3f} s"
        f"  ->  {report['throughput_rps']:.1f} req/s",
        f"  latency ms  p50={lat['p50']:.2f}  p90={lat['p90']:.2f}  "
        f"p99={lat['p99']:.2f}  mean={lat['mean']:.2f}  max={lat['max']:.2f}",
        f"  resilience  failed={report['requests_failed']}  "
        f"retries={report['retries_total']}  "
        f"unjoined={len(report['unjoined_workers'])}",
    ]
    if report.get("server"):
        lines.append(f"  cache       {report['server']['cache']}")
        lines.append(f"  counters    {report['server']['counters']}")
    if report.get("health"):
        h = report["health"]
        lines.append(
            f"  health      queue={h['queue_depth']}  inflight={h['inflight']}  "
            f"shed={h['requests_shed']}  respawns={h['compute_respawns']}"
        )
    lines.append(
        f"  identity    "
        f"{'bit-identical to direct partition()' if report['identity_ok'] else 'MISMATCH'}"
    )
    if report["errors"]:
        lines.append(f"  errors      {report['errors']}")
    return "\n".join(lines)
