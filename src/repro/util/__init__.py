"""Shared utilities: seeded RNG handling, timers, and argument validation."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.timers import StageTimer, Timer
from repro.util.validation import (
    check_assignment,
    check_epsilon,
    check_k,
    check_points,
    check_weights,
    require,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "StageTimer",
    "require",
    "check_points",
    "check_weights",
    "check_k",
    "check_epsilon",
    "check_assignment",
]
