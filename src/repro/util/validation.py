"""Argument validation shared by all public entry points.

All validators raise ``ValueError``/``TypeError`` with actionable messages and
return the canonicalised array so callers can write
``points = check_points(points)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "require",
    "check_points",
    "check_weights",
    "check_k",
    "check_epsilon",
    "check_assignment",
    "normalize_targets",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_points(points: np.ndarray, *, dims: tuple[int, ...] = (2, 3)) -> np.ndarray:
    """Canonicalise a point set to a C-contiguous float64 ``(n, d)`` array."""
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be a 2-D array of shape (n, d), got ndim={pts.ndim}")
    n, d = pts.shape
    if d not in dims:
        raise ValueError(f"points must have dimension in {dims}, got d={d}")
    if n == 0:
        raise ValueError("points must be non-empty")
    if not np.all(np.isfinite(pts)):
        raise ValueError("points contain NaN or infinite coordinates")
    return pts


def check_weights(weights: np.ndarray | None, n: int) -> np.ndarray:
    """Canonicalise node weights; ``None`` means unit weights."""
    if weights is None:
        return np.ones(n, dtype=np.float64)
    w = np.ascontiguousarray(weights, dtype=np.float64)
    if w.shape != (n,):
        raise ValueError(f"weights must have shape ({n},), got {w.shape}")
    if not np.all(np.isfinite(w)):
        raise ValueError("weights contain NaN or infinite values")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    if w.sum() <= 0:
        raise ValueError("total weight must be positive")
    return w


def check_k(k: int, n: int) -> int:
    """Validate the number of blocks."""
    if not isinstance(k, (int, np.integer)):
        raise TypeError(f"k must be an integer, got {type(k)!r}")
    k = int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > n:
        raise ValueError(f"k={k} exceeds the number of points n={n}")
    return k


def check_epsilon(epsilon: float) -> float:
    """Validate the imbalance parameter (``epsilon >= 0``)."""
    eps = float(epsilon)
    if not np.isfinite(eps) or eps < 0:
        raise ValueError(f"epsilon must be a finite value >= 0, got {epsilon}")
    return eps


def normalize_targets(
    target_weights: np.ndarray | None, k: int, total_weight: float
) -> np.ndarray:
    """Canonicalise per-block target weights to ``k`` positives summing to ``total_weight``.

    ``None`` means uniform targets (the homogeneous-machine default); explicit
    targets express heterogeneous capacities (paper footnote 1) and only their
    ratios matter.
    """
    if target_weights is None:
        return np.full(k, total_weight / k)
    targets = np.ascontiguousarray(target_weights, dtype=np.float64)
    if targets.shape != (k,):
        raise ValueError(f"target_weights must have shape ({k},), got {targets.shape}")
    if not np.all(np.isfinite(targets)) or np.any(targets <= 0):
        raise ValueError("target_weights must be finite and positive")
    return targets * (total_weight / targets.sum())


def check_assignment(assignment: np.ndarray, n: int, k: int) -> np.ndarray:
    """Validate a block assignment vector: shape ``(n,)``, values in ``[0, k)``."""
    a = np.ascontiguousarray(assignment)
    if a.shape != (n,):
        raise ValueError(f"assignment must have shape ({n},), got {a.shape}")
    if not np.issubdtype(a.dtype, np.integer):
        raise TypeError(f"assignment must be integral, got dtype {a.dtype}")
    if a.size and (a.min() < 0 or a.max() >= k):
        raise ValueError(f"assignment values must lie in [0, {k}), got range [{a.min()}, {a.max()}]")
    return a.astype(np.int64, copy=False)
