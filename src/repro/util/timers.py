"""Wall-clock timers used by the experiment harness.

The paper reports both end-to-end partitioning times and a per-component
breakdown (Hilbert indexing / redistribution / k-means, §5.3.2).
:class:`StageTimer` accumulates named stages so the same breakdown can be
printed by ``experiments.components``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named stage.

    Stages may be entered repeatedly; times accumulate.  ``fractions()``
    normalises to shares of the total, which is what the paper's component
    breakdown reports.
    """

    stages: dict[str, float] = field(default_factory=dict)

    def stage(self, name: str) -> "_StageContext":
        return _StageContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.stages.values())

    def fractions(self) -> dict[str, float]:
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.stages}
        return {name: t / total for name, t in self.stages.items()}

    def merge(self, other: "StageTimer") -> None:
        for name, t in other.stages.items():
            self.add(name, t)

    def __str__(self) -> str:
        parts = [f"{name}: {t:.4f}s" for name, t in sorted(self.stages.items())]
        return f"StageTimer({', '.join(parts)})"


class _StageContext:
    def __init__(self, parent: StageTimer, name: str) -> None:
        self._parent = parent
        self._name = name
        self._start: float | None = None

    def __enter__(self) -> "_StageContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self._parent.add(self._name, time.perf_counter() - self._start)
        self._start = None
