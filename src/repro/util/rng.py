"""Deterministic random-number-generator plumbing.

Every stochastic entry point in the library accepts ``rng`` as either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None`` (fresh
OS entropy).  Centralising the coercion here keeps experiments reproducible:
passing the same seed to any generator or partitioner yields identical output
on every platform numpy supports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (use OS entropy), an integer seed, or an existing generator
        (returned unchanged, *not* copied).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Used by the SPMD runtime so each simulated rank draws from its own
    stream; results are then independent of the rank execution order.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    parent = ensure_rng(rng)
    return [np.random.default_rng(s) for s in parent.bit_generator.seed_seq.spawn(n)]
