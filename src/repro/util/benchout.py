"""Scrubbing volatile measurements out of committed benchmark tables.

The benchmark suite writes its reproduced paper tables to
``benchmarks/results/*.txt``, which are committed so the repo's current
numbers are reviewable.  Deterministic columns (cuts, volumes, modeled
times, imbalances) are identical on every run, but wall-clock columns churn
on every regeneration and used to dirty the working tree each time the
benches ran.

:func:`scrub_volatile` blanks exactly those measured fields — named columns
of a fixed-width table (and/or free-form regex matches) become a
right-aligned placeholder, preserving the layout — so the committed file
only changes when a *deterministic* metric changes and bench regeneration
is diff-clean.  The full, unscrubbed text still goes to the git-ignored
``benchmarks/results/timings/`` sidecar for local inspection.

Column detection leans on the tables all being fixed-width with one header
line naming every column: a data-row token belongs to a volatile column
when its span overlaps the header name's span (both are right-aligned by
the shared format strings, so spans line up).
"""

from __future__ import annotations

import re
from collections.abc import Callable, Iterable

__all__ = ["scrub_volatile"]

_TOKEN = re.compile(r"\S+")


def _header_spans(lines: list[str], columns: Iterable[str]) -> dict[str, tuple[int, int]]:
    """Locate the first line naming every requested column; map name -> span."""
    wanted = list(columns)
    for line in lines:
        tokens = {m.group(0): m.span() for m in _TOKEN.finditer(line)}
        if all(name in tokens for name in wanted):
            return {name: tokens[name] for name in wanted}
    raise ValueError(f"no header line names all of {wanted!r}")


def _overlaps(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] < b[1] and b[0] < a[1]


def scrub_volatile(
    text: str,
    columns: Iterable[str] = (),
    row_filter: Callable[[str], bool] | None = None,
    patterns: Iterable[str] = (),
    placeholder: str = "-",
) -> str:
    """Blank measured values in a fixed-width benchmark table.

    ``columns`` names header columns whose per-row values are replaced by
    ``placeholder`` (right-aligned in the value's span, so the table shape
    survives).  ``row_filter`` restricts the column scrub to matching rows —
    e.g. only the ``measured`` rows of a table mixing measured and modeled
    lines.  ``patterns`` are regexes whose every match is replaced wholesale
    (for volatile values outside any table, like fitted coefficients).
    """
    lines = text.split("\n")
    spans = _header_spans(lines, columns) if columns else {}
    compiled = [re.compile(p) for p in patterns]
    if spans:
        header_idx = next(
            i for i, line in enumerate(lines)
            if all(line[s:e] == name for name, (s, e) in spans.items())
        )
        for i in range(header_idx + 1, len(lines)):
            line = lines[i]
            if row_filter is not None and not row_filter(line):
                continue
            if set(line.strip()) <= {"-"}:
                continue  # the header's ---- separator row
            out = line
            for _, span in spans.items():
                for m in _TOKEN.finditer(line):
                    if _overlaps(m.span(), span):
                        s, e = m.span()
                        out = out[:s] + placeholder.rjust(e - s) + out[e:]
                        break
            lines[i] = out
    scrubbed = "\n".join(lines)
    for rx in compiled:
        scrubbed = rx.sub(placeholder, scrubbed)
    return scrubbed
