"""Balance-preserving boundary refinement (simplified Fiduccia-Mattheyses).

Classic FM maintains gain buckets and allows hill-climbing sequences; this
implementation keeps the parts that matter for *post-processing a geometric
partition* (the use case the paper names):

- only **boundary vertices** are considered (interior moves cannot help);
- per pass, candidate moves are ordered by gain (edges to the target block
  minus edges to the own block, computed vectorised over all boundary
  vertices at once);
- moves are applied greedily; each application re-checks the gain against
  the *current* assignment (gains may have gone stale within the pass) and
  the balance constraint, so the invariants hold unconditionally:

  1. the edge cut never increases,
  2. no block exceeds ``(1 + epsilon) * ceil(W / k)``.

Passes repeat until no move is applied or ``max_passes`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment, check_epsilon

__all__ = ["fm_refine", "RefinementStats"]


@dataclass(frozen=True)
class RefinementStats:
    """Outcome of one :func:`fm_refine` call."""

    passes: int
    moves: int
    cut_before: int
    cut_after: int

    @property
    def improvement(self) -> float:
        if self.cut_before == 0:
            return 0.0
        return 1.0 - self.cut_after / self.cut_before


def _neighbor_block_counts(mesh: GeometricMesh, assignment: np.ndarray, vertices: np.ndarray, k: int):
    """For each given vertex: count of neighbours per block, shape (len, k)."""
    counts = np.zeros((vertices.shape[0], k), dtype=np.int64)
    for i, v in enumerate(vertices):
        nbr_blocks = assignment[mesh.indices[mesh.indptr[v] : mesh.indptr[v + 1]]]
        counts[i] = np.bincount(nbr_blocks, minlength=k)
    return counts


def _vertex_gain(mesh: GeometricMesh, assignment: np.ndarray, v: int, target: int) -> int:
    """Fresh gain of moving ``v`` to ``target`` under the current assignment."""
    nbr_blocks = assignment[mesh.indices[mesh.indptr[v] : mesh.indptr[v + 1]]]
    return int((nbr_blocks == target).sum() - (nbr_blocks == assignment[v]).sum())


def fm_refine(
    mesh: GeometricMesh,
    assignment: np.ndarray,
    k: int,
    epsilon: float = 0.03,
    max_passes: int = 3,
) -> tuple[np.ndarray, RefinementStats]:
    """Refine a partition in the FM spirit; returns (new assignment, stats).

    The input assignment is not modified.  Works on any partition; typical
    use is post-processing a geometric one (Geographer, RCB, ...).
    """
    from repro.metrics.cut import edge_cut

    a = check_assignment(assignment, mesh.n, k).copy()
    eps = check_epsilon(epsilon)
    w = mesh.node_weights
    block_w = np.bincount(a, weights=w, minlength=k)
    limit = (1.0 + eps) * np.ceil(w.sum() / k)

    cut_before = edge_cut(mesh, a, k)
    total_moves = 0
    passes_done = 0
    src_all = np.repeat(np.arange(mesh.n, dtype=np.int64), mesh.degrees())

    for _ in range(max_passes):
        passes_done += 1
        # boundary vertices: at least one foreign neighbour
        foreign = a[src_all] != a[mesh.indices]
        boundary = np.unique(src_all[foreign])
        if boundary.size == 0:
            break
        counts = _neighbor_block_counts(mesh, a, boundary, k)
        own = counts[np.arange(boundary.shape[0]), a[boundary]]
        counts[np.arange(boundary.shape[0]), a[boundary]] = -1  # exclude own block
        best_target = counts.argmax(axis=1)
        best_gain = counts[np.arange(boundary.shape[0]), best_target] - own
        order = np.argsort(-best_gain, kind="stable")

        moves_this_pass = 0
        for i in order:
            if best_gain[i] <= 0:
                break  # sorted: the rest cannot be positive either
            v = int(boundary[i])
            target = int(best_target[i])
            if target == a[v]:
                continue
            # re-check against the *current* assignment (stale-gain guard)
            gain = _vertex_gain(mesh, a, v, target)
            if gain <= 0:
                continue
            if block_w[target] + w[v] > limit:
                continue
            block_w[a[v]] -= w[v]
            block_w[target] += w[v]
            a[v] = target
            moves_this_pass += 1
        total_moves += moves_this_pass
        if moves_this_pass == 0:
            break

    cut_after = edge_cut(mesh, a, k)
    assert cut_after <= cut_before, "refinement must never increase the cut"
    return a, RefinementStats(passes_done, total_moves, cut_before, cut_after)
