"""Graph-based post-refinement (the paper's §2 out-of-scope extension).

The paper notes that "a graph-based postprocessing, for example based on the
Fiduccia-Mattheyses local refinement heuristic is easily possible, but
outside the scope of this paper."  This package implements that extension:
a balance-preserving boundary refinement that reduces the edge cut of any
geometric partition.
"""

from repro.refine.fm import RefinementStats, fm_refine

__all__ = ["fm_refine", "RefinementStats"]
