"""Tables 1 and 2: per-graph metric detail for every tool.

Table 1 covers the paper's large graphs at k = p = 1024; Table 2 the small
and medium graphs at k = p = 64.  At reproduction scale the same instance
families run with proportionally smaller k (defaults: 64 and 32) — what is
checked is the per-row *ordering* of tools, not absolute values.
"""

from __future__ import annotations

from repro.experiments.harness import PAPER_TOOLS, format_rows, run_tools_on_mesh
from repro.metrics.report import MetricRow
from repro.mesh.registry import REGISTRY

__all__ = ["TABLE1_INSTANCES", "TABLE2_INSTANCES", "run_table1", "run_table2", "format_table", "winners"]

#: Paper Table 1 graphs mapped to registry instances (large; k=p=1024).
TABLE1_INSTANCES = ("alyaB", "delaunay2d_m", "delaunay2d_l", "fesom_jigsaw", "hugetrace")

#: Paper Table 2 graphs mapped to registry instances (small/medium; k=p=64).
TABLE2_INSTANCES = (
    "333SP", "AS365", "M6", "NACA0015", "NLR",
    "alyaA", "alyaB", "delaunay2d_s", "fesom_f2glo", "fesom_fron",
    "fesom_jigsaw", "hugebubbles", "hugetrace", "hugetric", "rgg3d",
)


def _run(instances, k, scale, seed, tools, with_spmv) -> list[MetricRow]:
    rows: list[MetricRow] = []
    for name in instances:
        mesh = REGISTRY[name].make(scale=scale, seed=seed)
        rows.extend(run_tools_on_mesh(mesh, k, tools=tools, seed=seed, with_spmv=with_spmv))
    return rows


def run_table1(
    k: int = 64,
    scale: float = 1.0,
    seed: int = 0,
    tools: tuple[str, ...] = PAPER_TOOLS,
    instances: tuple[str, ...] = TABLE1_INSTANCES,
    with_spmv: bool = True,
) -> list[MetricRow]:
    """Table 1 (scaled): large instances, k scaled down from 1024."""
    return _run(instances, k, scale, seed, tools, with_spmv)


def run_table2(
    k: int = 32,
    scale: float = 1.0,
    seed: int = 0,
    tools: tuple[str, ...] = PAPER_TOOLS,
    instances: tuple[str, ...] = TABLE2_INSTANCES,
    with_spmv: bool = True,
) -> list[MetricRow]:
    """Table 2 (scaled): small/medium instances, k scaled down from 64."""
    return _run(instances, k, scale, seed, tools, with_spmv)


def format_table(rows: list[MetricRow], title: str) -> str:
    return format_rows(rows, title=title)


def winners(rows: list[MetricRow], metric: str) -> dict[str, str]:
    """Per graph, the tool with the best (lowest) value of ``metric``.

    Mirrors the bold entries of Tables 1-2.
    """
    by_graph: dict[str, list[MetricRow]] = {}
    for row in rows:
        by_graph.setdefault(row.graph, []).append(row)
    return {
        graph: min(graph_rows, key=lambda r: r.metric(metric)).tool
        for graph, graph_rows in by_graph.items()
    }
