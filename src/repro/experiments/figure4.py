"""Figure 4: running time vs graph size across all instances + trend fits.

The paper times every tool on every graph with ~250k points per block
(k = nearest power of two) and fits least-squares trend lines in log-log
space.  We reproduce the same protocol at scale: each registry instance is
partitioned by every tool with k chosen so that n/k is close to
``points_per_block``, and the per-tool fit exponents are reported.
The expected shape: HSFC/MJ fastest, Geographer a constant factor above
them, RCB/RIB with the steepest growth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import PAPER_TOOLS
from repro.mesh.registry import REGISTRY, instance_names
from repro.partitioners.base import get_partitioner

__all__ = ["TimingPoint", "run", "fit_trends", "format_result"]


@dataclass(frozen=True)
class TimingPoint:
    tool: str
    graph: str
    n: int
    k: int
    seconds: float


def _power_of_two_k(n: int, points_per_block: int) -> int:
    """Power-of-two k giving local size closest to the target (paper protocol)."""
    if n <= points_per_block:
        return 1
    raw = n / points_per_block
    lo = 1 << int(np.floor(np.log2(raw)))
    hi = lo * 2
    k = lo if abs(n / lo - points_per_block) <= abs(n / hi - points_per_block) else hi
    return max(2, min(k, n))


def run(
    points_per_block: int = 1000,
    scale: float = 1.0,
    seed: int = 0,
    tools: tuple[str, ...] = PAPER_TOOLS,
    names: tuple[str, ...] | None = None,
) -> list[TimingPoint]:
    """Time every tool on every registry instance."""
    out: list[TimingPoint] = []
    for name in (names or instance_names()):
        mesh = REGISTRY[name].make(scale=scale, seed=seed)
        k = _power_of_two_k(mesh.n, points_per_block)
        for tool in tools:
            partitioner = get_partitioner(tool)
            start = time.perf_counter()
            partitioner.partition_mesh(mesh, k, rng=seed)
            out.append(TimingPoint(tool, name, mesh.n, k, time.perf_counter() - start))
    return out


def fit_trends(points: list[TimingPoint]) -> dict[str, tuple[float, float]]:
    """Per-tool least-squares fit ``log2(t) = a * log2(n) + b`` (the figure's lines)."""
    fits: dict[str, tuple[float, float]] = {}
    tools = sorted({tp.tool for tp in points})
    for tool in tools:
        sel = [tp for tp in points if tp.tool == tool]
        if len(sel) < 2:
            continue
        x = np.log2([tp.n for tp in sel])
        y = np.log2([max(tp.seconds, 1e-9) for tp in sel])
        slope, intercept = np.polyfit(x, y, 1)
        fits[tool] = (float(slope), float(intercept))
    return fits


def format_result(points: list[TimingPoint]) -> str:
    lines = [f"{'tool':<14}{'graph':<22}{'n':>9}{'k':>6}{'seconds':>11}"]
    lines.append("-" * len(lines[0]))
    for tp in sorted(points, key=lambda t: (t.tool, t.n)):
        lines.append(f"{tp.tool:<14}{tp.graph:<22}{tp.n:>9}{tp.k:>6}{tp.seconds:>11.4f}")
    lines.append("")
    lines.append("least-squares fits: log2(seconds) = a*log2(n) + b")
    for tool, (a, b) in fit_trends(points).items():
        lines.append(f"  {tool:<14} a={a:+.3f}  b={b:+.2f}")
    return "\n".join(lines)
