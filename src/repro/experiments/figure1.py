"""Figure 1: visual comparison of partitions of a hugetric-style mesh.

The paper shows hugetric-0000 split into 8 blocks by RCB, RIB, MultiJagged,
zoltanSFC and Geographer: RCB/RIB produce thin elongated strips, MJ bounded
rectangles, HSFC wrinkled curve chunks, Geographer curved convex-ish blocks.
``run`` regenerates the six panels (input + five tools) as SVG files.
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.harness import PAPER_TOOLS
from repro.mesh.adaptive import hugetric_like
from repro.mesh.graph import GeometricMesh
from repro.partitioners.base import get_partitioner
from repro.viz.svg import render_partition_svg

__all__ = ["run"]


def run(
    out_dir: str,
    n: int = 6000,
    k: int = 8,
    seed: int = 0,
    mesh: GeometricMesh | None = None,
    tools: tuple[str, ...] = PAPER_TOOLS,
) -> dict[str, str]:
    """Write the Figure-1 panels; returns {panel name: svg path}.

    Also returns per-tool block-count sanity info embedded in the SVG titles.
    """
    os.makedirs(out_dir, exist_ok=True)
    mesh = mesh or hugetric_like(n, rng=seed)
    outputs: dict[str, str] = {}

    path = os.path.join(out_dir, "figure1_input.svg")
    render_partition_svg(mesh, None, path=path, title=f"input: {mesh.name} (n={mesh.n})")
    outputs["input"] = path

    for tool in tools:
        assignment = get_partitioner(tool).partition_mesh(mesh, k, rng=seed).assignment
        sizes = np.bincount(assignment, minlength=k)
        path = os.path.join(out_dir, f"figure1_{tool}.svg")
        render_partition_svg(
            mesh, assignment, path=path,
            title=f"{tool}: k={k}, sizes {sizes.min()}..{sizes.max()}",
        )
        outputs[tool] = path
    return outputs
