"""Figure 2: aggregated metric ratios per instance class.

For each class (2-D DIMACS, 2.5-D climate, 3-D meshes) and each tool, the
paper reports the geometric mean over the class's graphs of
``metric(tool) / metric(Geographer)`` for edgeCut, maxCommVol, totCommVol,
harmDiam and timeComm.  Values > 1 mean Geographer wins.

The headline claims this reproduces:
- Geographer has the lowest total communication volume in *all three*
  classes (~15 % better than the best competitor on 2-D DIMACS);
- MultiJagged wins edge cut on 3-D meshes by a few percent;
- no tool dominates everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import PAPER_TOOLS, format_matrix, run_tools_on_mesh
from repro.metrics.report import FIGURE2_METRICS, MetricRow, aggregate_ratios
from repro.mesh.registry import REGISTRY, instances_in_class

__all__ = ["Figure2Result", "run", "format_result"]

#: The paper's three panels.
CLASSES = ("dimacs2d", "climate25d", "mesh3d")


@dataclass
class Figure2Result:
    """Per-class ratio matrices plus the underlying rows."""

    ratios: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    rows: dict[str, list[MetricRow]] = field(default_factory=dict)

    def geographer_wins_totcomm(self) -> dict[str, bool]:
        """Per class: does every competitor have totCommVol ratio >= 1?"""
        out = {}
        for cls, matrix in self.ratios.items():
            out[cls] = all(
                matrix[tool].get("totCommVol", 1.0) >= 1.0
                for tool in matrix
                if tool != "Geographer"
            )
        return out


def run(
    k: int = 32,
    scale: float = 1.0,
    seed: int = 0,
    tools: tuple[str, ...] = PAPER_TOOLS,
    classes: tuple[str, ...] = CLASSES,
    max_instances_per_class: int | None = None,
    with_spmv: bool = True,
) -> Figure2Result:
    """Run all tools over all classes and aggregate Figure-2 style."""
    result = Figure2Result()
    for cls in classes:
        names = instances_in_class(cls)
        if max_instances_per_class is not None:
            names = names[:max_instances_per_class]
        rows: list[MetricRow] = []
        for name in names:
            mesh = REGISTRY[name].make(scale=scale, seed=seed)
            rows.extend(run_tools_on_mesh(mesh, k, tools=tools, seed=seed, with_spmv=with_spmv))
        result.rows[cls] = rows
        result.ratios[cls] = aggregate_ratios(rows, baseline_tool="Geographer")
    return result


def format_result(result: Figure2Result) -> str:
    """Text rendering of the three panels."""
    titles = {
        "dimacs2d": "(a) DIMACS graphs (2D) — ratios vs Geographer",
        "climate25d": "(b) Climate graphs (2.5D) — ratios vs Geographer",
        "mesh3d": "(c) Alya and Delaunay (3D) — ratios vs Geographer",
    }
    blocks = []
    for cls, matrix in result.ratios.items():
        blocks.append(format_matrix(matrix, FIGURE2_METRICS, title=titles.get(cls, cls)))
    return "\n\n".join(blocks)
