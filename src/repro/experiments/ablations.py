"""Ablations of Geographer's design choices (DESIGN.md §5).

The paper motivates each optimisation qualitatively; these experiments
quantify them on this implementation:

- **bounds**: Hamerly filter + box pruning — identical partitions, measured
  speedup, and the §4.3 claim that ~80 % of inner loops are skipped;
- **erosion**: influence erosion on heterogeneous densities — stability
  (imbalance / empty clusters) with and without;
- **sampling**: doubling-sample initialisation — wall-clock to convergence;
- **seeding**: SFC vs random vs k-means++ — iterations to converge and final
  communication volume;
- **curve**: Hilbert vs Morton bootstrap — quality of the SFC baseline and
  of Geographer seeding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.balanced_kmeans import balanced_kmeans
from repro.core.config import BalancedKMeansConfig
from repro.metrics.commvolume import total_comm_volume
from repro.mesh.graph import GeometricMesh
from repro.partitioners.hsfc import HSFCPartitioner

__all__ = ["AblationRow", "run_bounds", "run_erosion", "run_sampling", "run_seeding", "run_curve", "format_rows"]


@dataclass(frozen=True)
class AblationRow:
    experiment: str
    variant: str
    seconds: float
    iterations: int
    imbalance: float
    skip_fraction: float
    extra: dict


def _timed(points, k, cfg, seed, weights=None) -> tuple[float, "object"]:
    start = time.perf_counter()
    res = balanced_kmeans(points, k, weights=weights, config=cfg, rng=seed)
    return time.perf_counter() - start, res


def run_bounds(mesh: GeometricMesh, k: int = 16, seed: int = 0) -> list[AblationRow]:
    """Bounds/pruning on vs off: identical assignments, different speed."""
    rows = []
    base = BalancedKMeansConfig(use_sampling=False)
    variants = {
        "bounds+pruning": base,
        "bounds only": base.with_(use_box_pruning=False),
        "neither": base.with_(use_bounds=False, use_box_pruning=False),
    }
    reference = None
    for name, cfg in variants.items():
        secs, res = _timed(mesh.coords, k, cfg, seed, weights=mesh.node_weights)
        if reference is None:
            reference = res.assignment
        agreement = float((res.assignment == reference).mean())
        rows.append(AblationRow("bounds", name, secs, res.iterations, res.imbalance,
                                res.skip_fraction, {"agreement": agreement}))
    return rows


def run_erosion(mesh: GeometricMesh, k: int = 16, seed: int = 0) -> list[AblationRow]:
    rows = []
    for name, flag in (("erosion on", True), ("erosion off", False)):
        cfg = BalancedKMeansConfig(use_erosion=flag)
        secs, res = _timed(mesh.coords, k, cfg, seed, weights=mesh.node_weights)
        empties = int((np.bincount(res.assignment, minlength=k) == 0).sum())
        rows.append(AblationRow("erosion", name, secs, res.iterations, res.imbalance,
                                res.skip_fraction, {"empty_blocks": empties}))
    return rows


def run_sampling(mesh: GeometricMesh, k: int = 16, seed: int = 0) -> list[AblationRow]:
    rows = []
    for name, flag in (("sampling on", True), ("sampling off", False)):
        cfg = BalancedKMeansConfig(use_sampling=flag)
        secs, res = _timed(mesh.coords, k, cfg, seed, weights=mesh.node_weights)
        full_iters = sum(1 for h in res.history if h.sample_size == mesh.n)
        rows.append(AblationRow("sampling", name, secs, res.iterations, res.imbalance,
                                res.skip_fraction, {"full_rounds": full_iters}))
    return rows


def run_seeding(mesh: GeometricMesh, k: int = 16, seed: int = 0) -> list[AblationRow]:
    rows = []
    for method in ("sfc", "random", "kmeans++"):
        cfg = BalancedKMeansConfig(seeding=method, use_sampling=False)
        secs, res = _timed(mesh.coords, k, cfg, seed, weights=mesh.node_weights)
        vol = total_comm_volume(mesh, res.assignment, k)
        rows.append(AblationRow("seeding", method, secs, res.iterations, res.imbalance,
                                res.skip_fraction, {"totCommVol": vol}))
    return rows


def run_curve(mesh: GeometricMesh, k: int = 16, seed: int = 0) -> list[AblationRow]:
    """Hilbert vs Morton, both for the SFC baseline and Geographer's bootstrap."""
    rows = []
    for curve in ("hilbert", "morton"):
        assignment = HSFCPartitioner(curve=curve).partition_mesh(mesh, k, rng=seed).assignment
        vol = total_comm_volume(mesh, assignment, k)
        rows.append(AblationRow("curve/hsfc", curve, 0.0, 0, 0.0, 0.0, {"totCommVol": vol}))
        cfg = BalancedKMeansConfig(sfc_curve=curve, use_sampling=False)
        secs, res = _timed(mesh.coords, k, cfg, seed, weights=mesh.node_weights)
        vol = total_comm_volume(mesh, res.assignment, k)
        rows.append(AblationRow("curve/geographer", curve, secs, res.iterations,
                                res.imbalance, res.skip_fraction, {"totCommVol": vol}))
    return rows


def format_rows(rows: list[AblationRow]) -> str:
    header = f"{'experiment':<18}{'variant':<16}{'seconds':>9}{'iters':>7}{'imbal':>8}{'skip%':>8}  extra"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.experiment:<18}{row.variant:<16}{row.seconds:>9.3f}{row.iterations:>7}"
            f"{row.imbalance:>8.3f}{100 * row.skip_fraction:>7.1f}%  {row.extra}"
        )
    return "\n".join(lines)
