"""Figure 3: weak and strong scaling on the Delaunay series.

- 3a (weak): p = k from 32 to 8192 with ~250k points per rank; Geographer,
  MJ and HSFC scale almost perfectly to 1024 ranks then rise ~2x over three
  more doublings; RCB/RIB degrade immediately.
- 3b (strong): Delaunay2B (2x10^9 points), p = k from 1024 to 16384; all
  tools slow down from 8192 -> 16384 because jobs then span two SuperMUC
  islands (modelled by the island penalty in :class:`MachineModel`).

Points up to ``measured_max_ranks`` execute the full simulated SPMD run;
beyond that, rank-local work is extrapolated from calibrated per-point costs
(mode column distinguishes the two; see DESIGN.md §2).
"""

from __future__ import annotations

from collections import defaultdict

from repro.runtime.costmodel import MachineModel
from repro.runtime.scaling import ScalingPoint, strong_scaling, weak_scaling

__all__ = ["run_weak", "run_strong", "format_points"]


def run_weak(
    points_per_rank: int = 4000,
    rank_counts: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192),
    measured_max_ranks: int = 8,
    machine: MachineModel | None = None,
    seed: int = 0,
    backend: str | None = None,
) -> list[ScalingPoint]:
    """Figure 3a (paper: 250k points/rank; default here 4k for laptop scale)."""
    return weak_scaling(
        points_per_rank=points_per_rank,
        rank_counts=rank_counts,
        measured_max_ranks=measured_max_ranks,
        machine=machine,
        rng=seed,
        backend=backend,
    )


def run_strong(
    n: int = 2_000_000_000,
    rank_counts: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384),
    measured_max_ranks: int = 0,
    machine: MachineModel | None = None,
    seed: int = 0,
    backend: str | None = None,
) -> list[ScalingPoint]:
    """Figure 3b (paper: Delaunay2B; local work fully modeled at this n)."""
    return strong_scaling(
        n=n,
        rank_counts=rank_counts,
        measured_max_ranks=measured_max_ranks,
        machine=machine,
        rng=seed,
        backend=backend,
    )


def format_points(points: list[ScalingPoint], title: str = "") -> str:
    """Render curves as rows of seconds per (tool, p) — the figure's series."""
    by_tool: dict[str, list[ScalingPoint]] = defaultdict(list)
    for sp in points:
        by_tool[sp.tool].append(sp)
    ranks = sorted({sp.nranks for sp in points})
    header = f"{'tool':<14}" + "".join(f"{('p=' + str(p)):>12}" for p in ranks)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for tool in sorted(by_tool):
        cells = {sp.nranks: sp for sp in by_tool[tool]}
        row = "".join(
            f"{cells[p].seconds:>11.3f}{'*' if cells[p].mode == 'modeled' else ' '}"
            if p in cells else f"{'-':>12}"
            for p in ranks
        )
        lines.append(f"{tool:<14}{row}")
    lines.append("(* = modeled extrapolation; unmarked = measured simulated run)")
    return "\n".join(lines)
