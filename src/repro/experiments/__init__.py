"""Experiment drivers: one module per table/figure of the paper's §5.

Every module exposes ``run(...)`` returning structured results and a
``format_*`` helper printing the same rows/series the paper reports.  The
``benchmarks/`` tree wires each of these into pytest-benchmark.

Module map (see DESIGN.md §4 for the full per-experiment index):

- :mod:`repro.experiments.figure1` — partition visualisations (SVG);
- :mod:`repro.experiments.figure2` — per-class quality ratios;
- :mod:`repro.experiments.figure3` — weak/strong scaling;
- :mod:`repro.experiments.figure4` — running time vs n + trend fits;
- :mod:`repro.experiments.tables` — Tables 1 and 2 per-graph detail;
- :mod:`repro.experiments.components` — §5.3.2 stage breakdown;
- :mod:`repro.experiments.ablations` — design-choice ablations;
- :mod:`repro.experiments.repartitioning` — adaptive warm-vs-cold repartitioning.

Scaling note: experiments default to scaled-down instances (DESIGN.md §2);
pass ``scale`` > 1 to grow them when more compute is available.
"""

from repro.experiments import (
    ablations,
    components,
    figure1,
    figure2,
    figure3,
    figure4,
    repartitioning,
    tables,
)
from repro.experiments.harness import PAPER_TOOLS, format_rows, run_tool_on_mesh, run_tools_on_mesh

__all__ = [
    "run_tool_on_mesh",
    "run_tools_on_mesh",
    "format_rows",
    "PAPER_TOOLS",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "tables",
    "components",
    "ablations",
    "repartitioning",
]
