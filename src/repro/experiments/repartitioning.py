"""Adaptive-mesh repartitioning: warm starts vs cold restarts.

The scenario the paper positions balanced k-means for — large adaptive
simulations — repartitions the same mesh again and again as the load moves.
This experiment drives a :func:`repro.mesh.adaptive.refinement_sequence`
(fixed mesh, moving refinement front) through two strategies:

- **cold** — every step partitions from scratch, then blocks are renumbered
  for maximal overlap with the previous step
  (:func:`repro.metrics.migration.relabel_for_stability`), the best a
  memoryless partitioner can do;
- **warm** — every step calls :meth:`~repro.partitioners.base.GeometricPartitioner.repartition`
  with the previous result, so centers carry over and block ids stay stable
  by construction.

Reported per step: k-means iterations, imbalance, and the migration volume
relative to the previous step's partition of the same strategy.  Warm starts
should converge in fewer iterations *and* migrate less weight.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.mesh.adaptive import refinement_sequence
from repro.metrics.migration import migration_fraction, migration_volume, relabel_for_stability
from repro.partitioners.base import GeometricPartitioner, get_partitioner
from repro.partitioners.result import PartitionResult
from repro.runtime.checkpoint import CheckpointStore, validate_meta

__all__ = ["RepartitionStep", "run", "format_result"]

#: ``kind`` tag in checkpoint metadata (rejects resuming the wrong experiment).
CHECKPOINT_KIND = "repartition"


@dataclass(frozen=True)
class RepartitionStep:
    """Cold-vs-warm comparison for one step of the refinement sequence."""

    step: int
    iterations_cold: int
    iterations_warm: int
    imbalance_cold: float
    imbalance_warm: float
    migration_cold: float  # weight migrated vs previous step (after relabelling)
    migration_warm: float
    migration_frac_cold: float
    migration_frac_warm: float


def run(
    n: int = 3000,
    k: int = 12,
    steps: int = 4,
    epsilon: float = 0.03,
    seed: int = 0,
    tool: str | GeometricPartitioner = "Geographer",
    radii: tuple[float, float] = (0.22, 0.28),
    checkpoint_dir: str | None = None,
) -> list[RepartitionStep]:
    """Partition every step of a refinement sequence cold and warm.

    ``checkpoint_dir`` makes the experiment restartable: each completed step
    is snapshotted (both strategies' partitions plus the accumulated rows),
    and a later call with the same parameters and directory resumes after the
    last completed step with bit-identical remaining steps — each step's
    partitions depend only on its mesh, its seed, and the previous step's
    results, all of which the checkpoint restores exactly.  A checkpoint
    written under different parameters is rejected loudly.
    """
    meshes = refinement_sequence(n, steps=steps, rng=seed, radii=radii)
    if isinstance(tool, GeometricPartitioner):
        partitioner = tool
    elif tool == "Geographer":
        # sampled initialisation would hide most of the cold-start work from
        # the iteration counts (sample rounds are not "iterations"), so the
        # comparison runs without it for both strategies
        from repro.core.config import BalancedKMeansConfig
        from repro.partitioners.geographer import GeographerPartitioner

        partitioner = GeographerPartitioner(BalancedKMeansConfig(use_sampling=False))
    else:
        partitioner = get_partitioner(tool)

    store = CheckpointStore.ensure(checkpoint_dir)
    provenance = {
        "n": n, "k": k, "steps": steps, "epsilon": epsilon, "seed": seed,
        "radii": list(radii), "tool": getattr(partitioner, "name", str(tool)),
    }

    rows: list[RepartitionStep] = []
    prev_cold = None
    prev_warm = None
    start_step = 0
    if store is not None and store.latest() is not None:
        arrays, meta = store.load()
        validate_meta(meta, kind=CHECKPOINT_KIND, checks=[("provenance", provenance)])
        rows = [RepartitionStep(**row) for row in meta["rows"]]
        start_step = int(meta["step"]) + 1
        prev_cold = _restore_partition(arrays, meta, "cold")
        prev_warm = _restore_partition(arrays, meta, "warm")
    for step, mesh in enumerate(meshes):
        if step < start_step:
            continue
        cold = partitioner.partition_mesh(mesh, k, epsilon=epsilon, rng=seed + step)
        if prev_warm is None:
            warm = cold
        else:
            warm = partitioner.repartition_mesh(prev_warm, mesh, k, epsilon=epsilon,
                                                rng=seed + step)

        if prev_cold is None:
            mig_cold = mig_warm = 0.0
            frac_cold = frac_warm = 0.0
        else:
            # a memoryless run may permute block ids; credit it the best
            # consistent renumbering before charging migration
            relabelled = relabel_for_stability(prev_cold, cold, k, weights=mesh.node_weights)
            mig_cold = migration_volume(prev_cold, relabelled, weights=mesh.node_weights)
            frac_cold = migration_fraction(prev_cold, relabelled, weights=mesh.node_weights)
            mig_warm = migration_volume(prev_warm, warm, weights=mesh.node_weights)
            frac_warm = migration_fraction(prev_warm, warm, weights=mesh.node_weights)

        rows.append(
            RepartitionStep(
                step=step,
                iterations_cold=cold.iterations,
                iterations_warm=warm.iterations,
                imbalance_cold=cold.imbalance,
                imbalance_warm=warm.imbalance,
                migration_cold=mig_cold,
                migration_warm=mig_warm,
                migration_frac_cold=frac_cold,
                migration_frac_warm=frac_warm,
            )
        )
        prev_cold, prev_warm = cold, warm
        if store is not None:
            _save_step(store, step, rows, cold, warm, provenance)
    return rows


def _save_step(
    store: CheckpointStore,
    step: int,
    rows: list[RepartitionStep],
    cold: PartitionResult,
    warm: PartitionResult,
    provenance: dict,
) -> None:
    """Snapshot one completed step: both partitions + the rows so far."""
    arrays: dict = {}
    info: dict = {}
    for tag, res in (("cold", cold), ("warm", warm)):
        arrays[f"{tag}_assignment"] = res.assignment
        arrays[f"{tag}_block_weights"] = res.block_weights
        arrays[f"{tag}_target_weights"] = res.target_weights
        if res.centers is not None:
            arrays[f"{tag}_centers"] = res.centers
        info[tag] = {
            "k": res.k, "imbalance": res.imbalance, "epsilon": res.epsilon,
            "tool": res.tool, "iterations": res.iterations, "converged": res.converged,
        }
    meta = {
        "kind": CHECKPOINT_KIND,
        "provenance": provenance,
        "step": step,
        "rows": [asdict(row) for row in rows],
        "results": info,
    }
    store.save(arrays, meta)


def _restore_partition(arrays: dict, meta: dict, tag: str) -> PartitionResult:
    """Rebuild a :class:`PartitionResult` good enough to warm-start from.

    Carries everything the next step reads — assignment, centers (the warm
    start), block/target weights and the scalar diagnostics; the stage
    timers of the original run are not reconstructed.
    """
    info = meta["results"][tag]
    centers = arrays.get(f"{tag}_centers")
    return PartitionResult(
        assignment=np.asarray(arrays[f"{tag}_assignment"], dtype=np.int64),
        k=int(info["k"]),
        block_weights=np.asarray(arrays[f"{tag}_block_weights"], dtype=np.float64),
        target_weights=np.asarray(arrays[f"{tag}_target_weights"], dtype=np.float64),
        imbalance=float(info["imbalance"]),
        epsilon=float(info["epsilon"]),
        tool=str(info["tool"]),
        centers=None if centers is None else np.asarray(centers, dtype=np.float64),
        iterations=int(info["iterations"]),
        converged=bool(info["converged"]),
    )


def format_result(rows: list[RepartitionStep], title: str = "adaptive repartitioning") -> str:
    header = (
        f"{'step':>4}{'iters cold':>11}{'iters warm':>11}{'imbal cold':>11}{'imbal warm':>11}"
        f"{'migr cold':>11}{'migr warm':>11}{'frac cold':>10}{'frac warm':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.step:>4}{row.iterations_cold:>11}{row.iterations_warm:>11}"
            f"{row.imbalance_cold:>11.3f}{row.imbalance_warm:>11.3f}"
            f"{row.migration_cold:>11.1f}{row.migration_warm:>11.1f}"
            f"{row.migration_frac_cold:>10.1%}{row.migration_frac_warm:>10.1%}"
        )
    moving = rows[1:]
    if moving:
        cold_it = sum(r.iterations_cold for r in moving)
        warm_it = sum(r.iterations_warm for r in moving)
        cold_mig = sum(r.migration_cold for r in moving)
        warm_mig = sum(r.migration_warm for r in moving)
        lines.append("-" * len(header))
        lines.append(
            f"totals over steps 1..{rows[-1].step}: iterations {cold_it} cold vs {warm_it} warm; "
            f"migrated weight {cold_mig:.1f} cold vs {warm_mig:.1f} warm"
        )
    return "\n".join(lines)
