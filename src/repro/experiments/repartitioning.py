"""Adaptive-mesh repartitioning: warm starts vs cold restarts.

The scenario the paper positions balanced k-means for — large adaptive
simulations — repartitions the same mesh again and again as the load moves.
This experiment drives a :func:`repro.mesh.adaptive.refinement_sequence`
(fixed mesh, moving refinement front) through two strategies:

- **cold** — every step partitions from scratch, then blocks are renumbered
  for maximal overlap with the previous step
  (:func:`repro.metrics.migration.relabel_for_stability`), the best a
  memoryless partitioner can do;
- **warm** — every step calls :meth:`~repro.partitioners.base.GeometricPartitioner.repartition`
  with the previous result, so centers carry over and block ids stay stable
  by construction.

Reported per step: k-means iterations, imbalance, and the migration volume
relative to the previous step's partition of the same strategy.  Warm starts
should converge in fewer iterations *and* migrate less weight.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mesh.adaptive import refinement_sequence
from repro.metrics.migration import migration_fraction, migration_volume, relabel_for_stability
from repro.partitioners.base import GeometricPartitioner, get_partitioner

__all__ = ["RepartitionStep", "run", "format_result"]


@dataclass(frozen=True)
class RepartitionStep:
    """Cold-vs-warm comparison for one step of the refinement sequence."""

    step: int
    iterations_cold: int
    iterations_warm: int
    imbalance_cold: float
    imbalance_warm: float
    migration_cold: float  # weight migrated vs previous step (after relabelling)
    migration_warm: float
    migration_frac_cold: float
    migration_frac_warm: float


def run(
    n: int = 3000,
    k: int = 12,
    steps: int = 4,
    epsilon: float = 0.03,
    seed: int = 0,
    tool: str | GeometricPartitioner = "Geographer",
    radii: tuple[float, float] = (0.22, 0.28),
) -> list[RepartitionStep]:
    """Partition every step of a refinement sequence cold and warm."""
    meshes = refinement_sequence(n, steps=steps, rng=seed, radii=radii)
    if isinstance(tool, GeometricPartitioner):
        partitioner = tool
    elif tool == "Geographer":
        # sampled initialisation would hide most of the cold-start work from
        # the iteration counts (sample rounds are not "iterations"), so the
        # comparison runs without it for both strategies
        from repro.core.config import BalancedKMeansConfig
        from repro.partitioners.geographer import GeographerPartitioner

        partitioner = GeographerPartitioner(BalancedKMeansConfig(use_sampling=False))
    else:
        partitioner = get_partitioner(tool)

    rows: list[RepartitionStep] = []
    prev_cold = None
    prev_warm = None
    for step, mesh in enumerate(meshes):
        cold = partitioner.partition_mesh(mesh, k, epsilon=epsilon, rng=seed + step)
        if prev_warm is None:
            warm = cold
        else:
            warm = partitioner.repartition_mesh(prev_warm, mesh, k, epsilon=epsilon,
                                                rng=seed + step)

        if prev_cold is None:
            mig_cold = mig_warm = 0.0
            frac_cold = frac_warm = 0.0
        else:
            # a memoryless run may permute block ids; credit it the best
            # consistent renumbering before charging migration
            relabelled = relabel_for_stability(prev_cold, cold, k, weights=mesh.node_weights)
            mig_cold = migration_volume(prev_cold, relabelled, weights=mesh.node_weights)
            frac_cold = migration_fraction(prev_cold, relabelled, weights=mesh.node_weights)
            mig_warm = migration_volume(prev_warm, warm, weights=mesh.node_weights)
            frac_warm = migration_fraction(prev_warm, warm, weights=mesh.node_weights)

        rows.append(
            RepartitionStep(
                step=step,
                iterations_cold=cold.iterations,
                iterations_warm=warm.iterations,
                imbalance_cold=cold.imbalance,
                imbalance_warm=warm.imbalance,
                migration_cold=mig_cold,
                migration_warm=mig_warm,
                migration_frac_cold=frac_cold,
                migration_frac_warm=frac_warm,
            )
        )
        prev_cold, prev_warm = cold, warm
    return rows


def format_result(rows: list[RepartitionStep], title: str = "adaptive repartitioning") -> str:
    header = (
        f"{'step':>4}{'iters cold':>11}{'iters warm':>11}{'imbal cold':>11}{'imbal warm':>11}"
        f"{'migr cold':>11}{'migr warm':>11}{'frac cold':>10}{'frac warm':>10}"
    )
    lines = [title, header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.step:>4}{row.iterations_cold:>11}{row.iterations_warm:>11}"
            f"{row.imbalance_cold:>11.3f}{row.imbalance_warm:>11.3f}"
            f"{row.migration_cold:>11.1f}{row.migration_warm:>11.1f}"
            f"{row.migration_frac_cold:>10.1%}{row.migration_frac_warm:>10.1%}"
        )
    moving = rows[1:]
    if moving:
        cold_it = sum(r.iterations_cold for r in moving)
        warm_it = sum(r.iterations_warm for r in moving)
        cold_mig = sum(r.migration_cold for r in moving)
        warm_mig = sum(r.migration_warm for r in moving)
        lines.append("-" * len(header))
        lines.append(
            f"totals over steps 1..{rows[-1].step}: iterations {cold_it} cold vs {warm_it} warm; "
            f"migrated weight {cold_mig:.1f} cold vs {warm_mig:.1f} warm"
        )
    return "\n".join(lines)
