"""§5.3.2 "Components": share of running time per Geographer stage.

The paper reports that for small process counts the Hilbert indexing and the
k-means iterations dominate, while at high process counts the redistribution
step takes over (Delaunay2B: redistribution 32 % -> 46 % and k-means
47 % -> 42 % going from 1 024 to 16 384 processes).  ``run`` reproduces the
breakdown from the simulated SPMD runs (plus modeled large-p points).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.config import BalancedKMeansConfig
from repro.runtime.costmodel import MachineModel
from repro.runtime.distributed_kmeans import distributed_balanced_kmeans
from repro.runtime.scaling import calibrate, modeled_time
from repro.util.rng import ensure_rng

__all__ = ["ComponentRow", "run", "format_result"]

_STAGES = ("sfc_index", "redistribute", "kmeans")


@dataclass(frozen=True)
class ComponentRow:
    nranks: int
    n: int
    fractions: dict
    mode: str


def run(
    points_per_rank: int = 2000,
    rank_counts: tuple[int, ...] = (4, 8, 16),
    modeled_rank_counts: tuple[int, ...] = (1024, 16384),
    modeled_n: int = 2_000_000_000,
    machine: MachineModel | None = None,
    seed: int = 0,
) -> list[ComponentRow]:
    """Stage shares for measured (small p) and modeled (paper-scale p) runs."""
    gen = ensure_rng(seed)
    rows: list[ComponentRow] = []
    cfg = BalancedKMeansConfig(use_sampling=False)
    for p in rank_counts:
        pts = gen.random((points_per_rank * p, 2))
        res = distributed_balanced_kmeans(pts, k=p, nranks=p, config=cfg, machine=machine, rng=gen)
        total = sum(res.ledger.stages.get(s, 0.0) for s in _STAGES)
        fracs = {s: res.ledger.stages.get(s, 0.0) / total for s in _STAGES} if total > 0 else {}
        rows.append(ComponentRow(p, pts.shape[0], fracs, "measured"))
    calib = calibrate(machine=machine, rng=gen)
    for p in modeled_rank_counts:
        _, breakdown = modeled_time("Geographer", modeled_n, p, p, calib, machine)
        total = sum(breakdown.values())
        fracs = {s: breakdown.get(s, 0.0) / total for s in _STAGES}
        rows.append(ComponentRow(p, modeled_n, fracs, "modeled"))
    return rows


def format_result(rows: list[ComponentRow]) -> str:
    header = f"{'p':>8}{'n':>14}{'mode':>10}" + "".join(f"{s:>15}" for s in _STAGES)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "".join(f"{100 * row.fractions.get(s, 0.0):>14.1f}%" for s in _STAGES)
        lines.append(f"{row.nranks:>8}{row.n:>14}{row.mode:>10}{cells}")
    return "\n".join(lines)
