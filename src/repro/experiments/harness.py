"""Shared experiment machinery: timed runs + plain-text tables."""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.metrics.report import MetricRow, evaluate_partition
from repro.partitioners.base import get_partitioner

__all__ = ["PAPER_TOOLS", "run_tool_on_mesh", "run_tools_on_mesh", "format_rows", "format_matrix"]

#: Tools compared in Tables 1-2 (paper order).
PAPER_TOOLS = ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB")


def run_tool_on_mesh(
    mesh: GeometricMesh,
    tool: str,
    k: int,
    epsilon: float = 0.03,
    seed: int = 0,
    repeats: int = 1,
    with_spmv: bool = True,
    diameter_rounds: int = 3,
) -> MetricRow:
    """Partition ``mesh`` with ``tool`` and measure all paper metrics.

    ``repeats`` averages the wall-clock over several runs (the paper averages
    over 5); metrics are taken from the last run (deterministic given seed).
    """
    partitioner = get_partitioner(tool)
    elapsed = []
    result = None
    for rep in range(max(1, repeats)):
        start = time.perf_counter()
        result = partitioner.partition_mesh(mesh, k, epsilon=epsilon, rng=seed + rep)
        elapsed.append(time.perf_counter() - start)
    row = evaluate_partition(
        mesh, result.assignment, k, tool=tool, time=float(np.mean(elapsed)),
        diameter_rounds=diameter_rounds, with_spmv=with_spmv,
    )
    return row


def run_tools_on_mesh(
    mesh: GeometricMesh,
    k: int,
    tools: Sequence[str] = PAPER_TOOLS,
    epsilon: float = 0.03,
    seed: int = 0,
    repeats: int = 1,
    with_spmv: bool = True,
    diameter_rounds: int = 3,
) -> list[MetricRow]:
    """One Table-1/2 block: all tools on one mesh."""
    return [
        run_tool_on_mesh(mesh, tool, k, epsilon, seed, repeats, with_spmv, diameter_rounds)
        for tool in tools
    ]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if isinstance(value, float) and not value.is_integer():
        if abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return f"{int(value)}"


def format_rows(rows: Iterable[MetricRow], title: str = "") -> str:
    """Render metric rows as the paper's per-graph table layout."""
    header = f"{'graph':<22}{'tool':<14}{'time':>10}{'cut':>10}{'maxComm':>10}{'totComm':>11}{'harmDiam':>10}{'timeComm':>12}{'imbal':>8}"
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.graph:<22}{row.tool:<14}{row.time:>10.4f}{_fmt(row.cut):>10}"
            f"{_fmt(row.max_comm_vol):>10}{_fmt(row.total_comm_vol):>11}"
            f"{_fmt(row.harm_diameter):>10}{row.time_spmv_comm:>12.3e}{row.imbalance:>8.3f}"
        )
    return "\n".join(lines)


def format_matrix(
    matrix: dict[str, dict[str, float]],
    metrics: Sequence[str],
    title: str = "",
    baseline: str = "Geographer",
) -> str:
    """Render a Figure-2 style tool x metric ratio matrix."""
    header = f"{'tool':<14}" + "".join(f"{metric:>12}" for metric in metrics)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for tool in sorted(matrix, key=lambda t: (t != baseline, t)):
        cells = "".join(
            f"{matrix[tool].get(metric, float('nan')):>12.3f}" for metric in metrics
        )
        lines.append(f"{tool:<14}{cells}")
    return "\n".join(lines)
