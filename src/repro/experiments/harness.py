"""Shared experiment machinery: timed runs + plain-text tables."""

from __future__ import annotations

import time
from typing import Iterable, Sequence

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.metrics.report import MetricRow, evaluate_partition
from repro.partitioners.base import get_partitioner

__all__ = [
    "PAPER_TOOLS",
    "format_ledger",
    "format_matrix",
    "format_rows",
    "run_distributed_on_mesh",
    "run_tool_on_mesh",
    "run_tools_on_mesh",
]

#: Tools compared in Tables 1-2 (paper order).
PAPER_TOOLS = ("Geographer", "HSFC", "MultiJagged", "RCB", "RIB")


def run_tool_on_mesh(
    mesh: GeometricMesh,
    tool: str,
    k: int,
    epsilon: float = 0.03,
    seed: int = 0,
    repeats: int = 1,
    with_spmv: bool = True,
    diameter_rounds: int = 3,
) -> MetricRow:
    """Partition ``mesh`` with ``tool`` and measure all paper metrics.

    ``repeats`` averages the wall-clock over several runs (the paper averages
    over 5); the extra runs use shifted seeds purely for timing variety.
    Metrics are always taken from the ``rng=seed`` run, so the reported
    cut/imbalance/diameter are invariant to ``repeats``.
    """
    partitioner = get_partitioner(tool)
    elapsed = []
    result = None
    for rep in range(max(1, repeats)):
        start = time.perf_counter()
        rep_result = partitioner.partition_mesh(mesh, k, epsilon=epsilon, rng=seed + rep)
        elapsed.append(time.perf_counter() - start)
        if rep == 0:
            result = rep_result
    row = evaluate_partition(
        mesh, result.assignment, k, tool=tool, time=float(np.mean(elapsed)),
        diameter_rounds=diameter_rounds, with_spmv=with_spmv,
    )
    return row


def run_tools_on_mesh(
    mesh: GeometricMesh,
    k: int,
    tools: Sequence[str] = PAPER_TOOLS,
    epsilon: float = 0.03,
    seed: int = 0,
    repeats: int = 1,
    with_spmv: bool = True,
    diameter_rounds: int = 3,
) -> list[MetricRow]:
    """One Table-1/2 block: all tools on one mesh."""
    return [
        run_tool_on_mesh(mesh, tool, k, epsilon, seed, repeats, with_spmv, diameter_rounds)
        for tool in tools
    ]


def run_distributed_on_mesh(
    mesh: GeometricMesh,
    k: int,
    nranks: int,
    backend: str | None = None,
    epsilon: float = 0.03,
    seed: int = 0,
    with_spmv: bool = True,
    kernel_backend: str | None = None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume_from=None,
    provenance: dict | None = None,
):
    """Partition ``mesh`` through the distributed runtime on a chosen backend.

    Returns ``(row, result)``: the Table-1/2 metric row (wall-clock of the
    whole run in ``row.time``) plus the
    :class:`~repro.runtime.distributed_kmeans.DistributedKMeansResult`
    carrying the per-stage ledger (modeled on the virtual backend, measured
    on the process and mpi backends; ``backend="mpi"`` requires an SPMD
    launch through :mod:`repro.runtime.mpi_main`).

    ``kernel_backend`` selects the per-rank sweep kernel engine (any name
    registered in :mod:`repro.core.xp`; default: the config default, still
    overridable via ``REPRO_KERNEL_BACKEND``).

    ``checkpoint``/``checkpoint_every``/``resume_from``/``provenance`` are
    forwarded to
    :func:`~repro.runtime.distributed_kmeans.distributed_balanced_kmeans`;
    ``provenance`` should carry whatever is needed to rebuild the mesh and
    configuration (the ``repro`` CLI stores instance/scale/seed/epsilon so
    ``repro resume`` can relaunch from the checkpoint alone).
    """
    from repro.core.config import BalancedKMeansConfig
    from repro.runtime.comm import resolve_backend_name
    from repro.runtime.distributed_kmeans import distributed_balanced_kmeans

    cfg = BalancedKMeansConfig(epsilon=epsilon)
    if kernel_backend is not None:
        cfg = cfg.with_(kernel_backend=kernel_backend)
    start = time.perf_counter()
    result = distributed_balanced_kmeans(
        mesh.coords, k, nranks, weights=mesh.node_weights, config=cfg,
        rng=seed, backend=backend,
        checkpoint=checkpoint, checkpoint_every=checkpoint_every,
        resume_from=resume_from, provenance=provenance,
    )
    elapsed = time.perf_counter() - start
    tool = f"Geographer[p={nranks},{resolve_backend_name(backend)}]"
    row = evaluate_partition(mesh, result.assignment, k, tool=tool, time=elapsed,
                             with_spmv=with_spmv)
    return row, result


def format_ledger(ledger, measured: bool = False, title: str = "") -> str:
    """Render a :class:`~repro.runtime.comm.CostLedger` as a stage table.

    ``measured`` labels the seconds as real wall-clock (process backends)
    instead of machine-model time (virtual backend).
    """
    label = "measured" if measured else "modeled"
    header = f"{'stage':<16}{f'{label} s':>12}{'share':>8}"
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    total = ledger.total_seconds
    for stage, secs in sorted(ledger.stages.items()):
        share = secs / total if total > 0 else 0.0
        lines.append(f"{stage:<16}{secs:>12.4e}{share:>8.1%}")
    lines.append(f"{'total':<16}{total:>12.4e}{'':>8}")
    lines.append(
        f"supersteps {ledger.supersteps}, compute {ledger.compute_seconds:.4e} s, "
        f"comm {ledger.comm_seconds:.4e} s"
    )
    counts = ", ".join(f"{op} x{n}" for op, n in sorted(ledger.collective_counts.items()))
    if counts:
        lines.append(f"collectives: {counts}")
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if isinstance(value, float) and not value.is_integer():
        if abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return f"{int(value)}"


def format_rows(rows: Iterable[MetricRow], title: str = "") -> str:
    """Render metric rows as the paper's per-graph table layout."""
    header = f"{'graph':<22}{'tool':<14}{'time':>10}{'cut':>10}{'maxComm':>10}{'totComm':>11}{'harmDiam':>10}{'timeComm':>12}{'imbal':>8}"
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.graph:<22}{row.tool:<14}{row.time:>10.4f}{_fmt(row.cut):>10}"
            f"{_fmt(row.max_comm_vol):>10}{_fmt(row.total_comm_vol):>11}"
            f"{_fmt(row.harm_diameter):>10}{row.time_spmv_comm:>12.3e}{row.imbalance:>8.3f}"
        )
    return "\n".join(lines)


def format_matrix(
    matrix: dict[str, dict[str, float]],
    metrics: Sequence[str],
    title: str = "",
    baseline: str = "Geographer",
) -> str:
    """Render a Figure-2 style tool x metric ratio matrix."""
    header = f"{'tool':<14}" + "".join(f"{metric:>12}" for metric in metrics)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for tool in sorted(matrix, key=lambda t: (t != baseline, t)):
        cells = "".join(
            f"{matrix[tool].get(metric, float('nan')):>12.3f}" for metric in metrics
        )
        lines.append(f"{tool:<14}{cells}")
    return "\n".join(lines)
