"""SVG rendering of 2-D mesh partitions (reproduces Figure 1).

Renders triangles (when the mesh kept its Delaunay cells) coloured by the
majority block of their corners, or falls back to per-vertex dots.  Plain
text output — viewable in any browser, no plotting dependency.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.graph import GeometricMesh
from repro.util.validation import check_assignment
from repro.viz.palette import block_colors

__all__ = ["render_partition_svg"]


def _viewbox(coords: np.ndarray, size: float, margin: float):
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    extent = np.maximum(hi - lo, 1e-12)
    scale = (size - 2 * margin) / extent.max()

    def to_px(pts: np.ndarray) -> np.ndarray:
        xy = (pts - lo) * scale + margin
        xy[:, 1] = size - xy[:, 1]  # flip y: SVG grows downwards
        return xy

    return to_px


def render_partition_svg(
    mesh: GeometricMesh,
    assignment: np.ndarray | None,
    path: str | None = None,
    size: int = 900,
    margin: int = 12,
    point_radius: float = 1.6,
    title: str | None = None,
) -> str:
    """Render a 2-D mesh (optionally partitioned) to an SVG string.

    Parameters
    ----------
    assignment:
        Block per vertex, or ``None`` to draw the unpartitioned input (the
        leftmost panel of Figure 1).
    path:
        If given, the SVG is also written to this file.

    Returns the SVG text.
    """
    if mesh.dim != 2:
        raise ValueError("SVG rendering supports 2-D meshes only")
    k = 1
    if assignment is not None:
        k = int(assignment.max()) + 1
        assignment = check_assignment(assignment, mesh.n, k)
    colors = block_colors(k) if assignment is not None else ["#888888"]
    to_px = _viewbox(mesh.coords, float(size), float(margin))
    px = to_px(mesh.coords.copy())

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{margin}" y="{margin + 4}" font-size="14" font-family="sans-serif">{title}</text>')

    if mesh.cells is not None and mesh.cells.shape[1] == 3:
        # triangles coloured by majority corner block
        cells = mesh.cells
        if assignment is not None:
            corner_blocks = assignment[cells]
            tri_block = np.where(
                corner_blocks[:, 1] == corner_blocks[:, 2], corner_blocks[:, 1], corner_blocks[:, 0]
            )
        else:
            tri_block = np.zeros(cells.shape[0], dtype=np.int64)
        tri_px = px[cells]  # (t, 3, 2)
        for color_id in range(len(colors)):
            tris = tri_px[tri_block == color_id]
            if tris.shape[0] == 0:
                continue
            d = " ".join(
                f"M{t[0,0]:.1f} {t[0,1]:.1f}L{t[1,0]:.1f} {t[1,1]:.1f}L{t[2,0]:.1f} {t[2,1]:.1f}Z"
                for t in tris
            )
            parts.append(f'<path d="{d}" fill="{colors[color_id]}" stroke="none"/>')
    else:
        blocks = assignment if assignment is not None else np.zeros(mesh.n, dtype=np.int64)
        for color_id in range(len(colors)):
            members = px[blocks == color_id]
            if members.shape[0] == 0:
                continue
            circles = "".join(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{point_radius}"/>' for x, y in members
            )
            parts.append(f'<g fill="{colors[color_id]}">{circles}</g>')

    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(svg)
    return svg
