"""Colour palettes for partition rendering (no matplotlib dependency)."""

from __future__ import annotations

import colorsys


__all__ = ["block_colors", "hex_color"]


def hex_color(rgb: tuple[float, float, float]) -> str:
    """(r, g, b) in [0, 1] -> '#rrggbb'."""
    r, g, b = (int(round(255 * max(0.0, min(1.0, c)))) for c in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


def block_colors(k: int) -> list[str]:
    """k visually distinct colours: golden-angle hue rotation, alternating value.

    The golden-angle step keeps neighbouring block ids far apart in hue, so
    adjacent blocks (which tend to have consecutive ids under SFC-ordered
    seeding) contrast well.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    golden = 0.6180339887498949
    colors = []
    hue = 0.0
    for i in range(k):
        hue = (hue + golden) % 1.0
        sat = 0.55 + 0.3 * ((i % 3) / 2.0)
        val = 0.95 - 0.25 * ((i % 2))
        colors.append(hex_color(colorsys.hsv_to_rgb(hue, sat, val)))
    return colors
