"""Partition visualisation (Figure 1) — dependency-free SVG rendering."""

from repro.viz.palette import block_colors
from repro.viz.svg import render_partition_svg

__all__ = ["render_partition_svg", "block_colors"]
