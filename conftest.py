"""Repo-level pytest configuration: tier markers + golden regression fixtures.

Markers (registered in pyproject.toml):

- ``tier1`` — the default tier; applied automatically to every test that
  carries none of ``slow``/``process_backend``/``mpi_backend``, so
  ``pytest -m tier1`` is the fast gate.
- ``slow`` — long-running tests, excluded from the tier-1 selection.
- ``process_backend`` — tests that spawn real worker processes
  (:class:`repro.runtime.procomm.ProcessComm`); CI runs them as their own
  job via ``pytest -m process_backend``.
- ``mpi_backend`` — tests that launch ``mpiexec`` subprocesses against the
  MPI backend (:class:`repro.runtime.mpicomm.MPIComm`); they skip
  themselves when ``mpi4py``/``mpiexec`` are absent, and CI runs them as a
  dedicated job via ``pytest -m mpi_backend``.
- ``chaos`` — fault-injection tests that kill real worker processes
  mid-run (:mod:`repro.runtime.faults`); CI runs them as a dedicated job
  via ``pytest -m chaos`` under ``pytest-timeout``.
- ``service`` — partitioning-service tests that run real unix-socket
  servers, some as ``repro serve`` subprocesses (:mod:`repro.service`);
  CI runs them as a dedicated job via ``pytest -m service`` under
  ``pytest-timeout``.

Golden fixtures: tests call ``golden("name", {...})`` to compare a dict of
metrics against ``tests/golden/name.json``.  Run with ``--update-golden``
to (re)freeze the snapshots after an intentional kernel/backend change;
the diff of the JSON files then documents exactly what moved.
"""

from __future__ import annotations

import importlib.util
import json
import os
import shutil
import subprocess
import sys

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "tests", "golden")
SRC_DIR = os.path.join(os.path.dirname(__file__), "src")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden regression fixtures under tests/golden/",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if not any(m.name in ("slow", "process_backend", "mpi_backend", "chaos", "service",
                              "chaos_service")
                   for m in item.iter_markers()):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def mpiexec_run():
    """Callable launching ``python`` under ``mpiexec``; skips without MPI.

    ``mpiexec_run(n, args)`` runs ``mpiexec -n <n> python <args...>`` with
    ``src/`` on ``PYTHONPATH`` and returns the completed process (output
    captured, never raises on non-zero exit — tests assert on returncode).
    Open MPI refuses to oversubscribe small CI runners by default, so the
    flag is added when that implementation is detected; MPICH needs none.
    """
    if shutil.which("mpiexec") is None or importlib.util.find_spec("mpi4py") is None:
        pytest.skip("mpiexec and/or mpi4py unavailable")
    probe = subprocess.run(
        ["mpiexec", "--version"], capture_output=True, text=True, check=False
    )
    oversubscribe = ["--oversubscribe"] if "open" in probe.stdout.lower() else []
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = SRC_DIR + (os.pathsep + existing if existing else "")

    def run(nranks: int, args: list[str], timeout: float = 600.0):
        cmd = ["mpiexec", *oversubscribe, "-n", str(nranks), sys.executable, *args]
        return subprocess.run(
            cmd, capture_output=True, text=True, timeout=timeout, env=env,
            cwd=os.path.dirname(__file__), check=False,
        )

    return run


@pytest.fixture
def golden(request):
    """Compare a flat dict of metrics against a frozen JSON snapshot.

    Ints compare exactly; floats with 1e-9 relative tolerance (they are
    deterministic on one machine but may move across numpy releases, and a
    kernel change that shifts them more than that is exactly what this
    guard exists to surface).
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, value: dict) -> None:
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        if update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w") as fh:
                json.dump(value, fh, indent=2, sort_keys=True)
                fh.write("\n")
            pytest.skip(f"golden fixture {name!r} updated")
        if not os.path.exists(path):
            pytest.fail(
                f"missing golden fixture {path}; run pytest --update-golden to create it"
            )
        with open(path) as fh:
            frozen = json.load(fh)
        assert sorted(value) == sorted(frozen), (
            f"golden fixture {name!r} keys changed: {sorted(value)} vs {sorted(frozen)}"
        )
        for key, want in frozen.items():
            got = value[key]
            if isinstance(want, float):
                assert got == pytest.approx(want, rel=1e-9, abs=1e-12), (
                    f"{name}.{key}: got {got!r}, frozen {want!r}"
                )
            else:
                assert got == want, f"{name}.{key}: got {got!r}, frozen {want!r}"

    return check
