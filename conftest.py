"""Repo-level pytest configuration: tier markers + golden regression fixtures.

Markers (registered in pyproject.toml):

- ``tier1`` — the default tier; applied automatically to every test that
  carries neither ``slow`` nor ``process_backend``, so ``pytest -m tier1``
  is the fast gate.
- ``slow`` — long-running tests, excluded from the tier-1 selection.
- ``process_backend`` — tests that spawn real worker processes
  (:class:`repro.runtime.procomm.ProcessComm`); CI runs them as their own
  job via ``pytest -m process_backend``.

Golden fixtures: tests call ``golden("name", {...})`` to compare a dict of
metrics against ``tests/golden/name.json``.  Run with ``--update-golden``
to (re)freeze the snapshots after an intentional kernel/backend change;
the diff of the JSON files then documents exactly what moved.
"""

from __future__ import annotations

import json
import os

import pytest

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "tests", "golden")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden regression fixtures under tests/golden/",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if not any(m.name in ("slow", "process_backend") for m in item.iter_markers()):
            item.add_marker(pytest.mark.tier1)


@pytest.fixture
def golden(request):
    """Compare a flat dict of metrics against a frozen JSON snapshot.

    Ints compare exactly; floats with 1e-9 relative tolerance (they are
    deterministic on one machine but may move across numpy releases, and a
    kernel change that shifts them more than that is exactly what this
    guard exists to surface).
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, value: dict) -> None:
        path = os.path.join(GOLDEN_DIR, f"{name}.json")
        if update:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(path, "w") as fh:
                json.dump(value, fh, indent=2, sort_keys=True)
                fh.write("\n")
            pytest.skip(f"golden fixture {name!r} updated")
        if not os.path.exists(path):
            pytest.fail(
                f"missing golden fixture {path}; run pytest --update-golden to create it"
            )
        with open(path) as fh:
            frozen = json.load(fh)
        assert sorted(value) == sorted(frozen), (
            f"golden fixture {name!r} keys changed: {sorted(value)} vs {sorted(frozen)}"
        )
        for key, want in frozen.items():
            got = value[key]
            if isinstance(want, float):
                assert got == pytest.approx(want, rel=1e-9, abs=1e-12), (
                    f"{name}.{key}: got {got!r}, frozen {want!r}"
                )
            else:
                assert got == want, f"{name}.{key}: got {got!r}, frozen {want!r}"

    return check
